"""Job-selection policies and the placement solver's request types.

The hypothetical-utility equalization hands every incomplete job a target
CPU rate; memory, however, bounds how many jobs fit on the nodes (in the
paper's setup only three per node), so the controller must pick *which*
jobs actually run.  The policies here order jobs by **urgency** -- the
equalized target rate itself: a job that needs more MHz to hold the common
utility level is closer to violating its SLA -- and decide when a waiting
job is urgent enough to evict (suspend) a running one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..types import Cycles, Megabytes, Mhz, Seconds


@dataclass(slots=True, unsafe_hash=True)
class JobRequest:
    """One incomplete job's placement request for a control cycle.

    Immutable by convention (nothing in the pipeline mutates requests);
    not ``frozen=True`` because the controller rebuilds one instance per
    incomplete job every control cycle and frozen-dataclass construction
    costs ~2.3x (``object.__setattr__`` per field) on that hot path.
    ``unsafe_hash`` keeps the field-based hash a frozen dataclass would
    have generated, consistent with ``__eq__``.

    Attributes
    ----------
    job_id / vm_id:
        Identifiers (the VM id keys placement entries).
    target_rate:
        CPU rate from the hypothetical equalization, MHz.
    speed_cap:
        Upper bound on any grant, MHz.
    memory_mb:
        VM footprint.
    current_node:
        Node currently hosting the job's VM, or ``None`` when pending or
        suspended.
    was_suspended:
        True when the VM exists in suspended state (resuming costs more
        than starting fresh bookkeeping-wise, and the planner must emit
        Resume rather than Start).
    submit_time:
        For deterministic tie-breaking (older first).
    importance:
        Job weight (reporting; ordering uses the target rate).
    remaining_work:
        Remaining CPU work (MHz·s); lets the eviction policy protect jobs
        that are about to finish.  ``inf`` (the default) disables the
        protection for callers that do not track progress.
    """

    job_id: str
    vm_id: str
    target_rate: Mhz
    speed_cap: Mhz
    memory_mb: Megabytes
    current_node: Optional[str]
    was_suspended: bool
    submit_time: Seconds
    importance: float = 1.0
    remaining_work: Cycles = math.inf

    def __post_init__(self) -> None:
        if self.target_rate < 0:
            raise ConfigurationError(f"job {self.job_id}: negative target rate")
        if self.speed_cap <= 0:
            raise ConfigurationError(f"job {self.job_id}: non-positive speed cap")
        if self.memory_mb <= 0:
            raise ConfigurationError(f"job {self.job_id}: non-positive memory")
        if self.remaining_work < 0:
            raise ConfigurationError(f"job {self.job_id}: negative remaining work")

    @classmethod
    def trusted(
        cls,
        job_id: str,
        vm_id: str,
        target_rate: Mhz,
        speed_cap: Mhz,
        memory_mb: Megabytes,
        current_node: Optional[str],
        was_suspended: bool,
        submit_time: Seconds,
        importance: float,
        remaining_work: Cycles,
    ) -> "JobRequest":
        """Validation-free constructor for the controller's hot path.

        The controller builds one request per incomplete job every control
        cycle from values whose invariants are already enforced upstream
        (spec validation for caps/memory, the equalizer's non-negative
        rates, the snapshot's clamped remaining work), so re-checking them
        per request is pure overhead.  External callers must use the
        normal constructor: this one skips ``__post_init__``.
        """
        self = object.__new__(cls)
        self.job_id = job_id
        self.vm_id = vm_id
        self.target_rate = target_rate
        self.speed_cap = speed_cap
        self.memory_mb = memory_mb
        self.current_node = current_node
        self.was_suspended = was_suspended
        self.submit_time = submit_time
        self.importance = importance
        self.remaining_work = remaining_work
        return self

    @property
    def urgency(self) -> float:
        """Urgency key: the equalized target rate (higher = more at risk)."""
        return self.target_rate

    @property
    def min_remaining_time(self) -> Seconds:
        """Fastest possible time to completion (at the speed cap)."""
        return self.remaining_work / self.speed_cap


@dataclass(frozen=True, slots=True)
class AppRequest:
    """One web application's placement request for a control cycle.

    Attributes
    ----------
    app_id:
        Application identifier; instance VM ids are derived as
        ``tx:{app_id}@{node_id}`` so they are stable per (app, node).
    target_allocation:
        Aggregate CPU the arbiter granted the app, MHz.
    instance_memory_mb:
        Footprint of one instance VM.
    min_instances / max_instances:
        Bounds on the instance count.
    current_nodes:
        Nodes hosting an instance entering this cycle.
    preferred_nodes:
        Latency-aware candidate ranking for *new* instances: ``(node_id,
        rank)`` pairs, lower rank = more preferred (see
        :meth:`repro.netmodel.context.NetworkContext.preferred_nodes`).
        Ranked nodes are tried before unranked ones; within a rank the
        solver keeps its free-CPU order.  Empty (the default) leaves the
        solver's candidate order untouched.
    """

    app_id: str
    target_allocation: Mhz
    instance_memory_mb: Megabytes
    min_instances: int
    max_instances: int
    current_nodes: frozenset[str]
    # New fields append after the seed ones so positional construction
    # of this public frozen dataclass keeps working.
    preferred_nodes: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.target_allocation < 0:
            raise ConfigurationError(f"app {self.app_id}: negative target")
        if self.instance_memory_mb <= 0:
            raise ConfigurationError(f"app {self.app_id}: non-positive memory")
        if self.min_instances < 1 or self.max_instances < self.min_instances:
            raise ConfigurationError(f"app {self.app_id}: bad instance bounds")
        if any(rank < 0 for _, rank in self.preferred_nodes):
            raise ConfigurationError(f"app {self.app_id}: negative preference rank")

    def instance_vm_id(self, node_id: str) -> str:
        """The stable VM id of this app's instance on ``node_id``."""
        return f"tx:{self.app_id}@{node_id}"


def order_by_urgency(requests: Sequence[JobRequest]) -> list[JobRequest]:
    """Most urgent first; ties broken by submission time then id.

    Deterministic total order -- identical inputs always produce the same
    placement decisions.
    """
    # r.urgency is the target rate (see JobRequest.urgency); read the
    # field directly to skip one property call per element on this
    # every-cycle sort.
    return sorted(
        requests, key=lambda r: (-r.target_rate, r.submit_time, r.job_id)
    )


def split_runnable(
    requests: Sequence[JobRequest], min_rate: Mhz
) -> tuple[list[JobRequest], list[JobRequest]]:
    """Partition into (worth running, deferred) by the minimum useful rate.

    Running a job at a sliver of CPU wastes a memory slot that a more
    urgent job could use; jobs whose equalized target falls below
    ``min_rate`` wait in the queue instead ("deferred").
    """
    if min_rate < 0:
        raise ConfigurationError("min_rate must be non-negative")
    runnable = [r for r in requests if r.target_rate >= min_rate]
    deferred = [r for r in requests if r.target_rate < min_rate]
    return runnable, deferred


class EvictionPolicy:
    """Decides whether a waiting job may displace a running one.

    A suspension loses checkpointed progress and costs two placement
    changes (suspend + later resume), so the waiting job must be *clearly*
    more urgent: its target rate must exceed the victim's by the relative
    ``margin``.

    ``protect_completion`` (seconds) exempts running jobs that could
    finish within that window at full speed.  Without it, a deeply
    overloaded system degenerates into lockstep processor sharing: jobs
    that just ran have the least remaining work, hence the lowest
    equalized rates, and get evicted by their peers one cycle before
    finishing -- the population progresses uniformly and *nobody*
    completes.  Letting near-done jobs run out frees their memory slots
    far sooner than a suspend/resume round trip would.
    """

    def __init__(self, margin: float = 0.25, protect_completion: Seconds = 1800.0) -> None:
        if margin < 0:
            raise ConfigurationError("margin must be non-negative")
        if protect_completion < 0:
            raise ConfigurationError("protect_completion must be non-negative")
        self.margin = margin
        self.protect_completion = protect_completion

    def should_evict(self, waiting: JobRequest, victim: JobRequest) -> bool:
        """True when ``waiting`` justifies suspending ``victim``."""
        if victim.min_remaining_time <= self.protect_completion:
            return False
        return waiting.urgency > victim.urgency * (1.0 + self.margin)

    def pick_victim(
        self, waiting: JobRequest, running: Sequence[JobRequest]
    ) -> Optional[JobRequest]:
        """Least urgent running job that :meth:`should_evict` approves.

        Only jobs whose memory release would actually admit ``waiting``
        are candidates (footprint at least as large).
        """
        candidates = [
            r
            for r in running
            if r.memory_mb >= waiting.memory_mb and self.should_evict(waiting, r)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.urgency, r.submit_time, r.job_id))

    def victim_index(self, running: Sequence[JobRequest]) -> "VictimIndex":
        """Precomputed index answering :meth:`pick_victim` queries in O(1)-ish.

        The placement solver asks for a victim once per unplaced request
        against a mostly-unchanged candidate set; scanning the whole
        running population per request is the O(requests x running) term
        this index removes.  Picks are identical to :meth:`pick_victim`
        over the not-yet-discarded candidates (pinned by a regression
        test and the solver equivalence suite).
        """
        return VictimIndex(self, running)


class VictimIndex:
    """Vectorized eviction-victim lookup for one solver pass.

    Candidates are pre-sorted by the victim preference key
    ``(urgency, submit_time, job_id)``; a query masks the columnar
    eligibility arrays and takes the first hit, which is exactly the
    ``min`` the policy's scan would return (job ids make the key a
    strict total order).  :meth:`discard` drops an evicted victim.
    """

    __slots__ = ("_candidates", "_memory", "_threshold", "_eligible", "_slots")

    def __init__(self, policy: EvictionPolicy, running: Sequence[JobRequest]) -> None:
        ordered = sorted(
            running, key=lambda r: (r.urgency, r.submit_time, r.job_id)
        )
        n = len(ordered)
        self._candidates = ordered
        self._slots = {r.job_id: i for i, r in enumerate(ordered)}
        self._memory = np.fromiter((r.memory_mb for r in ordered), float, count=n)
        # should_evict's urgency test, with the victim-side product hoisted.
        self._threshold = np.fromiter(
            (r.urgency * (1.0 + policy.margin) for r in ordered), float, count=n
        )
        self._eligible = np.fromiter(
            (r.min_remaining_time > policy.protect_completion for r in ordered),
            bool,
            count=n,
        )

    def pick(self, waiting: JobRequest) -> Optional[JobRequest]:
        """First (least-preferred-to-keep) eligible victim for ``waiting``."""
        mask = (
            self._eligible
            & (self._memory >= waiting.memory_mb)
            & (waiting.urgency > self._threshold)
        )
        if not mask.any():
            return None
        return self._candidates[int(np.argmax(mask))]

    def discard(self, victim: JobRequest) -> None:
        """Remove an evicted candidate from future picks."""
        self._eligible[self._slots[victim.job_id]] = False

"""Workload utility curves: utility as a function of aggregate allocation.

The arbiter (:mod:`repro.core.arbiter`) trades CPU between the two
workload types by comparing these curves.  Each curve is non-decreasing in
the allocation and saturates at the workload's *max-utility demand* --
"the CPU demand that would make each workload achieve its maximum
utility" (paper Figure 2).

* :class:`TransactionalCurve` -- one web application through its
  performance model and response-time utility.
* :class:`TransactionalAggregateCurve` -- several web applications treated
  as one workload: the aggregate allocation is divided so that the apps'
  utilities are equalized (the same fairness principle the paper applies
  within the long-running workload), and the common level is the
  aggregate's utility.
* :class:`LongRunningCurve` -- the job population through hypothetical
  utility equalization.
"""

from __future__ import annotations

import math
from typing import Literal, Protocol, Sequence

from ..errors import ConfigurationError
from ..perf.jobmodel import JobPopulation
from ..perf.queueing import TransactionalPerfModel
from ..types import Mhz, WorkloadKind
from ..utility.transactional import TransactionalUtility
from .hypothetical import HypotheticalAllocation, HypotheticalEqualizer

#: Which scalar of the hypothetical allocation the arbiter compares:
#: the population mean (what Figure 1 plots) or the equalized level.
LongRunningMetric = Literal["mean", "level"]

#: Bisection depth for arbiter-facing curve evaluations.  The arbiter
#: compares utilities against a 1e-4 tolerance, so driving the inner
#: equalization to float exactness (~55 effective iterations) buys
#: nothing: 30 iterations bound the level error by ~1e-8 -- four orders
#: of magnitude below the arbiter's resolution -- at half the cost of
#: the dominant term of the control cycle.  The *final* equalization
#: that produces per-job target rates (:meth:`LongRunningCurve.equalize`)
#: always runs float-exact.
_CURVE_EVAL_ITERS = 30


class UtilityCurve(Protocol):
    """Monotone utility-versus-allocation curve of one workload."""

    @property
    def kind(self) -> WorkloadKind:
        """The workload type this curve describes."""
        ...

    @property
    def max_utility_demand(self) -> Mhz:
        """Allocation at which the curve saturates."""
        ...

    def utility(self, allocation: Mhz) -> float:
        """Predicted utility at the given aggregate allocation."""
        ...


class TransactionalCurve:
    """Utility curve of a single web application."""

    def __init__(
        self,
        model: TransactionalPerfModel,
        utility_fn: TransactionalUtility,
        rt_tolerance: float = 0.05,
    ) -> None:
        self._model = model
        self._utility = utility_fn
        self._demand = model.max_utility_demand(rt_tolerance)

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.TRANSACTIONAL

    @property
    def max_utility_demand(self) -> Mhz:
        return self._demand

    @property
    def model(self) -> TransactionalPerfModel:
        """The underlying performance model (exposed for diagnostics)."""
        return self._model

    def utility(self, allocation: Mhz) -> float:
        return self._utility.of_allocation(self._model, allocation)

    def allocation_for_utility(self, target: float) -> Mhz:
        """Smallest allocation reaching ``target`` utility (capped at demand)."""
        return min(
            self._utility.allocation_for_utility(self._model, target), self._demand
        )

    def max_utility(self) -> float:
        """The plateau utility value."""
        return self._utility.max_utility(self._model)


class TransactionalAggregateCurve:
    """Several web applications arbitrated as one transactional workload.

    Given an aggregate allocation, the member applications' utilities are
    equalized by bisection on the common utility level (each app's
    required allocation at a level comes from inverting its response-time
    model).  Apps whose plateau lies below the common level are capped at
    their max-utility demand.
    """

    def __init__(self, curves: Sequence[TransactionalCurve]) -> None:
        if not curves:
            raise ConfigurationError("aggregate needs at least one app curve")
        self._curves = list(curves)
        self._demand = sum(c.max_utility_demand for c in self._curves)

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.TRANSACTIONAL

    @property
    def max_utility_demand(self) -> Mhz:
        return self._demand

    @property
    def members(self) -> list[TransactionalCurve]:
        """The member app curves, in construction order."""
        return list(self._curves)

    def split(self, allocation: Mhz) -> list[Mhz]:
        """Divide ``allocation`` among the apps, equalizing their utilities."""
        if allocation < 0:
            raise ConfigurationError("allocation must be non-negative")
        if len(self._curves) == 1:
            return [min(allocation, self._demand)]
        if allocation >= self._demand:
            return [c.max_utility_demand for c in self._curves]

        def consumed(level: float) -> float:
            return sum(
                min(c.allocation_for_utility(min(level, c.max_utility())), c.max_utility_demand)
                for c in self._curves
            )

        hi = max(c.max_utility() for c in self._curves)
        lo = hi - 1.0
        for _ in range(60):  # expand until feasible
            if consumed(lo) <= allocation:
                break
            lo = hi - 2 * (hi - lo)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if consumed(mid) > allocation:
                hi = mid
            else:
                lo = mid
        return [
            min(c.allocation_for_utility(min(lo, c.max_utility())), c.max_utility_demand)
            for c in self._curves
        ]

    def utility(self, allocation: Mhz) -> float:
        shares = self.split(allocation)
        return min(
            c.utility(share) for c, share in zip(self._curves, shares)
        ) if len(self._curves) > 1 else self._curves[0].utility(shares[0])


class LongRunningCurve:
    """Utility curve of the long-running workload via hypothetical utility.

    Each evaluation runs a hypothetical-utility equalization, the single
    most expensive operation on the control cycle's hot path, so the
    curve holds one :class:`HypotheticalEqualizer` (the allocation-
    independent setup is shared across the arbiter's dozen-plus
    evaluations) and memoizes :meth:`utility` by allocation -- the
    arbiter re-evaluates its accepted split, and a curve instance is
    built fresh from one population snapshot per cycle, so the memo
    cannot go stale.  :meth:`utility` results are coarse
    (``_CURVE_EVAL_ITERS``); :meth:`equalize` is float-exact and
    uncached -- the controller calls it exactly once per cycle for the
    per-job target rates.
    """

    def __init__(self, population: JobPopulation, metric: LongRunningMetric = "mean") -> None:
        if metric not in ("mean", "level"):
            raise ConfigurationError(f"unknown long-running metric {metric!r}")
        self._population = population
        self._metric = metric
        self._demand = float(population.total_cap) if len(population) else 0.0
        self._equalizer = HypotheticalEqualizer(population)
        self._utility_memo: dict[float, float] = {}

    @property
    def kind(self) -> WorkloadKind:
        return WorkloadKind.LONG_RUNNING

    @property
    def max_utility_demand(self) -> Mhz:
        return self._demand

    @property
    def population(self) -> JobPopulation:
        """The underlying job-population snapshot."""
        return self._population

    @property
    def equalizer(self) -> HypotheticalEqualizer:
        """The shared equalization context (stats, warm seeding)."""
        return self._equalizer

    def warm_seed(self, level: float, depth: int) -> None:
        """Seed the equalizer's bisections from a previous converged level.

        The seed is verified per bisection against the cold invariant, so
        every curve evaluation stays bit-identical (see
        :meth:`repro.core.hypothetical.HypotheticalEqualizer.seed_level`).
        """
        if len(self._population):
            self._equalizer.seed_level(level, depth)

    def equalize(self, allocation: Mhz) -> "HypotheticalAllocation":
        """Float-exact equalization at ``allocation``."""
        return self._equalizer.equalize(allocation)

    def utility(self, allocation: Mhz) -> float:
        if len(self._population) == 0:
            return 1.0
        memo = self._utility_memo.get(allocation)
        if memo is not None:
            return memo
        value = self._equalizer.metric_at(
            allocation, self._metric, bisect_iters=_CURVE_EVAL_ITERS
        )
        self._utility_memo[allocation] = value
        return value

    def max_utility(self) -> float:
        """The plateau: every job at its speed cap."""
        if len(self._population) == 0:
            return 1.0
        return self.utility(self._demand + 1.0)


def effective_capacity(total_capacity: Mhz, efficiency: float = 1.0) -> Mhz:
    """Capacity the arbiter may hand out.

    ``efficiency`` (0, 1] discounts for placement fragmentation -- the
    divisible-CPU arbitration slightly overestimates what an integral
    placement can deliver; a discount below 1 makes the arbiter's promises
    conservatively realizable.
    """
    if not 0 < efficiency <= 1:
        raise ConfigurationError("efficiency must be in (0, 1]")
    if total_capacity < 0 or math.isinf(total_capacity):
        raise ConfigurationError("total_capacity must be finite and non-negative")
    return total_capacity * efficiency

"""Declarative stochastic fault models.

Each spec describes one *fault process* over a set of eligible nodes;
``node_class`` restricts a process to nodes of one
:class:`~repro.cluster.topology.NodeClass` (heterogeneous topologies
only).  All times are seconds of simulated time; MTBF/MTTR are the means
of exponential inter-event and repair-duration draws.  Specs are pure
data -- :func:`repro.faults.plan.compile_faults` turns them into
scheduled events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..errors import ConfigurationError
from ..types import Seconds


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class CrashFaultSpec:
    """Independent crash/restore renewal process per eligible node.

    Every eligible node alternates healthy periods of mean ``mtbf``
    seconds with outages of mean ``mttr`` seconds (both exponential).
    """

    mtbf: Seconds
    mttr: Seconds
    node_class: Optional[str] = None
    start: Seconds = 0.0

    def __post_init__(self) -> None:
        _require_positive("mtbf", self.mtbf)
        _require_positive("mttr", self.mttr)
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class ZoneOutageSpec:
    """Correlated outages taking down a whole zone at once.

    ``zones`` selects the zones in one of two forms:

    * an **int** ``k`` -- the cluster's nodes are split (in registration
      order) into ``k`` contiguous synthetic zones, the original
      topology-agnostic behavior;
    * a **list of zone names** -- each named zone of the topology (the
      :class:`~repro.cluster.topology.NodeClass` ``zone``, defaulting to
      the class name) is one outage group.  Names are validated against
      the topology at materialize time, so a typo fails loudly instead
      of compiling to a silent no-op outage.

    Either way each zone has its own outage renewal process and an
    outage fails every node of the zone simultaneously.
    """

    zones: Union[int, tuple[str, ...]]
    mtbf: Seconds
    mttr: Seconds
    start: Seconds = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.zones, bool):
            raise ConfigurationError("zones must be an int or zone names")
        if isinstance(self.zones, int):
            if self.zones < 1:
                raise ConfigurationError("zones must be >= 1")
        elif isinstance(self.zones, (list, tuple)):
            names = tuple(self.zones)
            if not names:
                raise ConfigurationError("zones name list must be non-empty")
            if any(not isinstance(z, str) or not z for z in names):
                raise ConfigurationError(
                    f"zone names must be non-empty strings: {names}"
                )
            if len(set(names)) != len(names):
                raise ConfigurationError(f"duplicate zone names in {names}")
            object.__setattr__(self, "zones", names)
        else:
            raise ConfigurationError(
                f"zones must be an int or a list of zone names, "
                f"got {self.zones!r}"
            )
        _require_positive("mtbf", self.mtbf)
        _require_positive("mttr", self.mttr)
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class BrownoutFaultSpec:
    """Capacity brownouts: a node temporarily serves ``fraction`` of its
    nominal CPU speed for a mean ``duration`` seconds, with mean ``mtbf``
    seconds between episodes per eligible node."""

    mtbf: Seconds
    duration: Seconds
    fraction: float
    node_class: Optional[str] = None
    start: Seconds = 0.0

    def __post_init__(self) -> None:
        _require_positive("mtbf", self.mtbf)
        _require_positive("duration", self.duration)
        if not 0 < self.fraction < 1:
            raise ConfigurationError("fraction must be in (0, 1)")
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class FlapFaultSpec:
    """Flapping nodes: bursts of ``flaps`` short outages.

    Episodes arrive per eligible node with mean ``mtbf`` seconds between
    them; within an episode the node goes down for ``down`` seconds and
    back up for ``up`` seconds, ``flaps`` times in a row (fixed
    durations: flapping is a deterministic burst once triggered).
    """

    mtbf: Seconds
    flaps: int
    down: Seconds
    up: Seconds
    node_class: Optional[str] = None
    start: Seconds = 0.0

    def __post_init__(self) -> None:
        _require_positive("mtbf", self.mtbf)
        if self.flaps < 1:
            raise ConfigurationError("flaps must be >= 1")
        _require_positive("down", self.down)
        _require_positive("up", self.up)
        if self.start < 0:
            raise ConfigurationError("start must be non-negative")


@dataclass(frozen=True)
class FaultPlanSpec:
    """The ``faults`` block of a scenario spec: a bundle of fault
    processes plus the name of the RNG stream they draw from.

    An empty plan is valid and compiles to no events.  ``stream`` keys
    the fault draws in the scenario's :class:`~repro.sim.rng.RngRegistry`
    so fault realizations are independent of the trace and noise streams.
    """

    crashes: tuple[CrashFaultSpec, ...] = ()
    zone_outages: tuple[ZoneOutageSpec, ...] = ()
    brownouts: tuple[BrownoutFaultSpec, ...] = ()
    flaps: tuple[FlapFaultSpec, ...] = ()
    stream: str = "faults"

    def __post_init__(self) -> None:
        if not self.stream or not isinstance(self.stream, str):
            raise ConfigurationError("stream must be a non-empty string")

"""Compiling fault plans into scheduled events.

:func:`compile_faults` expands a :class:`~repro.faults.models.FaultPlanSpec`
into concrete :class:`~repro.experiments.scenario.NodeFailure` /
:class:`~repro.experiments.scenario.NodeBrownout` events.  The expansion
is a deterministic function of the generator it is handed (seeded from
the scenario seed by ``ScenarioSpec.materialize``), because the draw
order is fixed: crash specs, then zone-outage specs, then flap specs,
then brownout specs, each iterating its eligible nodes (or zones) in
cluster registration order.  Admission filtering happens *after* all
draws for a node, so dropping an overlapping interval never shifts the
random stream of later nodes.

Outage intervals (crashes, zone outages, flaps) are de-overlapped per
node against each other *and* against the hand-written
``ScenarioSpec.failures`` schedule: a drawn interval that intersects an
already-admitted outage of the same node is silently dropped -- the node
is already down.  Brownout intervals are de-overlapped only among
themselves; a brownout that happens to intersect an outage is harmless
(a failed node has no capacity to derate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..experiments.scenario import NodeBrownout, NodeFailure
from .models import FaultPlanSpec

#: Safety cap on events drawn per (process, node): a pathological MTBF
#: far below the horizon cannot explode the schedule.
_MAX_EVENTS_PER_NODE = 512

#: Floor on drawn outage/brownout durations, so `restore_at > at` always
#: holds even for a zero exponential draw.
_MIN_DURATION = 1e-6

# Intervals are (start, end) with end = +inf for permanent outages.
_Interval = tuple[float, float]


@dataclass(frozen=True)
class CompiledFaults:
    """The scheduled events a fault plan expands to."""

    failures: tuple[NodeFailure, ...]
    brownouts: tuple[NodeBrownout, ...]


def validate_failure_schedule(
    failures: Sequence[NodeFailure], *, field: str = "failures"
) -> None:
    """Reject overlapping outages of the same node.

    A failure scheduled while the node is already down (or a permanent
    failure followed by any later failure of the same node) would only
    surface mid-simulation as confusing ``Cluster`` behaviour; catch it
    at spec-build time instead.

    Raises
    ------
    ConfigurationError
        Naming the two conflicting entries by index.
    """
    by_node: dict[str, list[tuple[float, float, int]]] = {}
    for index, failure in enumerate(failures):
        end = math.inf if failure.restore_at is None else failure.restore_at
        by_node.setdefault(failure.node_id, []).append((failure.at, end, index))
    for node_id, intervals in by_node.items():
        intervals.sort()
        for (start_a, end_a, a), (start_b, _end_b, b) in zip(
            intervals, intervals[1:]
        ):
            if start_b < end_a:
                raise ConfigurationError(
                    f"{field}[{b}] (node {node_id!r}, t={start_b:g}) overlaps "
                    f"{field}[{a}] (t={start_a:g}.."
                    f"{'inf' if end_a == math.inf else f'{end_a:g}'})"
                )


def _overlaps(intervals: Iterable[_Interval], start: float, end: float) -> bool:
    return any(start < e and s < end for s, e in intervals)


def _renewal_intervals(
    rng: np.random.Generator,
    *,
    mtbf: float,
    mean_duration: float,
    start: float,
    horizon: float,
) -> list[_Interval]:
    """Alternating up/down renewal process truncated at the horizon."""
    intervals: list[_Interval] = []
    t = start + float(rng.exponential(mtbf))
    while t < horizon and len(intervals) < _MAX_EVENTS_PER_NODE:
        duration = max(float(rng.exponential(mean_duration)), _MIN_DURATION)
        intervals.append((t, t + duration))
        t += duration + float(rng.exponential(mtbf))
    return intervals


def _eligible_nodes(
    node_ids: Sequence[str],
    node_class_of: Mapping[str, str],
    node_class: str | None,
    what: str,
) -> list[str]:
    if node_class is None:
        return list(node_ids)
    eligible = [nid for nid in node_ids if node_class_of.get(nid) == node_class]
    if not eligible:
        raise ConfigurationError(
            f"{what}: node_class {node_class!r} matches no node in the topology"
        )
    return eligible


def _zone_partition(node_ids: Sequence[str], zones: int) -> list[list[str]]:
    """Split nodes into ``zones`` contiguous groups in registration order."""
    if zones > len(node_ids):
        raise ConfigurationError(
            f"zones={zones} exceeds the {len(node_ids)}-node topology"
        )
    base, extra = divmod(len(node_ids), zones)
    partition: list[list[str]] = []
    cursor = 0
    for z in range(zones):
        size = base + (1 if z < extra else 0)
        partition.append(list(node_ids[cursor : cursor + size]))
        cursor += size
    return partition


def _named_zone_partition(
    node_ids: Sequence[str],
    zone_names: Sequence[str],
    node_zone_of: Mapping[str, str],
) -> list[list[str]]:
    """One group per named topology zone, nodes in registration order.

    Every name must match at least one node's zone: a typo'd zone name
    used to compile to a silent no-op outage, now it fails loudly with
    the zones that do exist.
    """
    partition: list[list[str]] = []
    for name in zone_names:
        members = [nid for nid in node_ids if node_zone_of.get(nid) == name]
        if not members:
            known = sorted(set(node_zone_of.values()))
            raise ConfigurationError(
                f"zone {name!r} matches no node in the topology "
                f"(zones present: {', '.join(known) if known else 'none'})"
            )
        partition.append(members)
    return partition


def compile_faults(
    plan: FaultPlanSpec,
    *,
    node_ids: Sequence[str],
    node_class_of: Mapping[str, str],
    rng: np.random.Generator,
    horizon: float,
    existing_failures: Sequence[NodeFailure] = (),
    node_zone_of: Mapping[str, str] | None = None,
) -> CompiledFaults:
    """Expand ``plan`` into scheduled failure and brownout events.

    Parameters
    ----------
    node_ids:
        Every node of the topology, in registration order (the ids the
        materialized cluster will use).
    node_class_of:
        Node id -> :class:`~repro.cluster.topology.NodeClass` name; empty
        for homogeneous topologies.
    node_zone_of:
        Node id -> network-zone name (see
        :func:`repro.cluster.topology.zone_map_from_classes`); consulted
        only by zone-outage specs that select zones *by name*.  ``None``
        or empty means the topology declares no zones, so named
        selections fail validation.
    rng:
        Seeded generator owning the fault realization; the caller passes
        ``RngRegistry(seed).stream(plan.stream)``.
    horizon:
        No fault *begins* at or after this time (repairs may complete
        later; the runner simply never executes them).
    existing_failures:
        Hand-written outages the compiled schedule must not overlap.

    Returns
    -------
    CompiledFaults
        Events sorted by ``(at, node_id)``.
    """
    outages: dict[str, list[_Interval]] = {}
    for failure in existing_failures:
        end = math.inf if failure.restore_at is None else failure.restore_at
        outages.setdefault(failure.node_id, []).append((failure.at, end))

    failures: list[NodeFailure] = []

    def admit_outage(node_id: str, start: float, end: float) -> None:
        taken = outages.setdefault(node_id, [])
        if _overlaps(taken, start, end):
            return
        taken.append((start, end))
        failures.append(NodeFailure(at=start, node_id=node_id, restore_at=end))

    for i, crash in enumerate(plan.crashes):
        eligible = _eligible_nodes(
            node_ids, node_class_of, crash.node_class, f"faults.crashes[{i}]"
        )
        for node_id in eligible:
            intervals = _renewal_intervals(
                rng,
                mtbf=crash.mtbf,
                mean_duration=crash.mttr,
                start=crash.start,
                horizon=horizon,
            )
            for start, end in intervals:
                admit_outage(node_id, start, end)

    for i, zone_spec in enumerate(plan.zone_outages):
        try:
            if isinstance(zone_spec.zones, int):
                partition = _zone_partition(node_ids, zone_spec.zones)
            else:
                partition = _named_zone_partition(
                    node_ids, zone_spec.zones, node_zone_of or {}
                )
        except ConfigurationError as exc:
            raise ConfigurationError(f"faults.zone_outages[{i}]: {exc}") from None
        for zone in partition:
            intervals = _renewal_intervals(
                rng,
                mtbf=zone_spec.mtbf,
                mean_duration=zone_spec.mttr,
                start=zone_spec.start,
                horizon=horizon,
            )
            for start, end in intervals:
                for node_id in zone:
                    admit_outage(node_id, start, end)

    for i, flap in enumerate(plan.flaps):
        eligible = _eligible_nodes(
            node_ids, node_class_of, flap.node_class, f"faults.flaps[{i}]"
        )
        for node_id in eligible:
            t = flap.start + float(rng.exponential(flap.mtbf))
            episodes = 0
            while t < horizon and episodes < _MAX_EVENTS_PER_NODE:
                for _ in range(flap.flaps):
                    if t >= horizon:
                        break
                    admit_outage(node_id, t, t + flap.down)
                    t += flap.down + flap.up
                episodes += 1
                t += float(rng.exponential(flap.mtbf))

    brownout_taken: dict[str, list[_Interval]] = {}
    brownouts: list[NodeBrownout] = []
    for i, brownout in enumerate(plan.brownouts):
        eligible = _eligible_nodes(
            node_ids, node_class_of, brownout.node_class, f"faults.brownouts[{i}]"
        )
        for node_id in eligible:
            intervals = _renewal_intervals(
                rng,
                mtbf=brownout.mtbf,
                mean_duration=brownout.duration,
                start=brownout.start,
                horizon=horizon,
            )
            taken = brownout_taken.setdefault(node_id, [])
            for start, end in intervals:
                if _overlaps(taken, start, end):
                    continue
                taken.append((start, end))
                brownouts.append(
                    NodeBrownout(
                        at=start,
                        node_id=node_id,
                        fraction=brownout.fraction,
                        restore_at=end,
                    )
                )

    failures.sort(key=lambda f: (f.at, f.node_id))
    brownouts.sort(key=lambda b: (b.at, b.node_id))
    return CompiledFaults(failures=tuple(failures), brownouts=tuple(brownouts))

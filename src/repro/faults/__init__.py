"""Stochastic fault injection.

Declarative fault *models* (:class:`FaultPlanSpec` and its per-process
specs) describe crash/restore renewal processes, correlated zone outages,
capacity brownouts and flapping nodes.  :func:`compile_faults` expands a
plan into concrete scheduled events -- :class:`~repro.experiments.scenario.NodeFailure`
and :class:`~repro.experiments.scenario.NodeBrownout` -- deterministically
from a seeded generator, so the same ``(spec, seed)`` always produces the
same fault realization and ``Experiment.replicate`` aggregates over fault
realizations simply by fanning seeds.

:mod:`repro.faults.chaos` adds the control-plane side: a seeded
chaos-monkey policy wrapper that injects ``decide()`` exceptions to
exercise the graceful-degradation path
(:class:`repro.core.resilient.ResilientController`).
"""

from .chaos import ChaosPolicy, InjectedFaultError
from .models import (
    BrownoutFaultSpec,
    CrashFaultSpec,
    FaultPlanSpec,
    FlapFaultSpec,
    ZoneOutageSpec,
)
from .plan import CompiledFaults, compile_faults, validate_failure_schedule

__all__ = [
    "BrownoutFaultSpec",
    "ChaosPolicy",
    "CompiledFaults",
    "CrashFaultSpec",
    "FaultPlanSpec",
    "FlapFaultSpec",
    "InjectedFaultError",
    "ZoneOutageSpec",
    "compile_faults",
    "validate_failure_schedule",
]

"""Chaos-monkey policy wrapper.

Node-level faults alone never make a healthy controller misbehave, so the
graceful-degradation path of
:class:`repro.core.resilient.ResilientController` needs its own fault
source: :class:`ChaosPolicy` wraps any placement policy and raises a
seeded :class:`InjectedFaultError` from ``decide()`` with a fixed
per-cycle probability.  The injection stream is deterministic in the
scenario seed (one uniform draw per cycle), so chaos runs stay
seed-reproducible and replications aggregate over injection patterns.

Registered as the ``"chaos-utility"`` policy (chaos around the default
utility controller) in :mod:`repro.baselines.registry`.
"""

from __future__ import annotations

from ..errors import ConfigurationError, ReproError
from ..sim.rng import RngRegistry


class InjectedFaultError(ReproError):
    """A deliberate failure injected by :class:`ChaosPolicy`."""


class ChaosPolicy:
    """Wrap ``inner`` and fail ``decide()`` with probability ``error_rate``.

    Every other attribute (``observe_app``, ``control_state``,
    ``invalidate``, ...) is delegated to the wrapped policy, so the
    wrapper is transparent to the runner and to
    :class:`~repro.core.resilient.ResilientController`.
    """

    def __init__(
        self,
        inner: object,
        *,
        error_rate: float = 0.2,
        seed: int = 0,
        stream: str = "chaos-policy",
    ) -> None:
        if not 0 <= error_rate <= 1:
            raise ConfigurationError("error_rate must be in [0, 1]")
        self.inner = inner
        self.error_rate = error_rate
        self.injected = 0
        self._rng = RngRegistry(seed).stream(stream)

    def decide(self, t, **kwargs):
        if float(self._rng.random()) < self.error_rate:
            self.injected += 1
            raise InjectedFaultError(
                f"chaos: injected decide() failure #{self.injected} at t={t:g}"
            )
        return self.inner.decide(t, **kwargs)

    def __getattr__(self, name: str):
        if name == "inner":  # guard half-initialized pickling/copy paths
            raise AttributeError(name)
        return getattr(self.inner, name)

"""Controller configuration.

One frozen dataclass collects every tunable of the utility-driven
placement controller, with validation at construction.  The defaults
reproduce the paper's setup (600 s control cycle) with the solver and
arbiter settings used throughout the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal, Optional

from .errors import ConfigurationError
from .types import Mhz, Seconds


@dataclass(frozen=True)
class SolverConfig:
    """Tunables of the placement solver.

    The ``backend`` field selects the solver implementation through the
    backend registry (:mod:`repro.core.backends`): ``"greedy"`` is the
    paper's fast incremental heuristic
    (:class:`repro.core.placement_solver.PlacementSolver`), ``"milp"``
    the optimal mixed-integer formulation
    (:class:`repro.core.milp_solver.MilpPlacementSolver`) used as a
    correctness oracle and optimality-gap reference.  Third-party
    backends registered via
    :func:`repro.core.backends.register_backend` are selected the same
    way.

    Attributes
    ----------
    backend:
        Name of the registered solver backend (``"greedy"`` |
        ``"milp"`` | any registered name).  Unknown names fail at solver
        construction, not here, so configs can be built before custom
        backends are registered.
    change_penalty_mhz:
        MILP objective penalty (MHz) per disruptive placement change;
        keeps the optimal backend from churning placements for
        negligible demand gains.  Ignored by the greedy backend, which
        bounds churn structurally (budget/eviction/migration caps).
    min_job_rate:
        Jobs whose equalized target is below this (MHz) are not *admitted*
        (running jobs are never stopped for having a low target; eviction
        handles displacement).
    change_budget:
        Maximum disruptive actions per cycle (``None`` = unlimited).
    eviction_margin:
        Relative urgency advantage a waiting job needs to evict.
        Greedy-only ordering heuristic: the MILP backend subsumes it
        with ``change_penalty_mhz`` and ``max_evictions``.
    max_evictions:
        Cap on evictions per cycle (suspension churn bound; each eviction
        costs a suspend now and a resume later).
    protect_completion:
        Running jobs that could finish within this many seconds at full
        speed are never evicted (a suspend/resume round trip costs more
        than letting them run out; also prevents lockstep starvation
        under deep overload).  Honoured by both backends: the MILP
        forces protected jobs to remain placed (migration still
        allowed).
    migration_deficit:
        A running job allocated below ``migration_deficit * target``
        becomes a migration candidate.  Greedy-only ordering heuristic;
        the MILP weighs every move through the objective instead, but
        still caps moves at ``max_migrations``.
    max_migrations:
        Cap on rebalancing migrations per cycle.
    stop_idle_instances:
        Whether web instances granted no CPU are stopped (down to
        ``min_instances``).  Honoured by both backends: when False, the
        MILP pins every running instance in place.
    web_start_threshold:
        Unplaced fraction of an app's target below which no new instance
        is started (avoids churning instances for slivers).  Greedy-only
        heuristic; the MILP prices instance starts through
        ``change_penalty_mhz`` instead.
    """

    min_job_rate: Mhz = 150.0
    change_budget: Optional[int] = None
    eviction_margin: float = 0.5
    max_evictions: int = 4
    protect_completion: Seconds = 1800.0
    migration_deficit: float = 0.5
    max_migrations: int = 4
    stop_idle_instances: bool = True
    web_start_threshold: float = 0.02
    # New fields append after the seed ones so positional construction
    # of this public frozen dataclass keeps working.
    backend: str = "greedy"
    change_penalty_mhz: Mhz = 1.0

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigurationError("backend must be a non-empty string")
        if self.change_penalty_mhz < 0:
            raise ConfigurationError("change_penalty_mhz must be non-negative")
        if self.min_job_rate < 0:
            raise ConfigurationError("min_job_rate must be non-negative")
        if self.change_budget is not None and self.change_budget < 0:
            raise ConfigurationError("change_budget must be non-negative or None")
        if self.eviction_margin < 0:
            raise ConfigurationError("eviction_margin must be non-negative")
        if self.max_evictions < 0:
            raise ConfigurationError("max_evictions must be non-negative")
        if self.protect_completion < 0:
            raise ConfigurationError("protect_completion must be non-negative")
        if not 0 <= self.migration_deficit <= 1:
            raise ConfigurationError("migration_deficit must be in [0, 1]")
        if self.max_migrations < 0:
            raise ConfigurationError("max_migrations must be non-negative")
        if not 0 <= self.web_start_threshold < 1:
            raise ConfigurationError("web_start_threshold must be in [0, 1)")


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of :class:`repro.core.controller.UtilityDrivenController`.

    Attributes
    ----------
    control_cycle:
        Seconds between placement recomputations (600 s in the paper).
    arbiter:
        ``"bisection"`` (fast path) or ``"stealing"`` (the paper's
        iterative loop); both converge to the same split.
    lr_metric:
        Which scalar of the hypothetical allocation the arbiter compares
        against the transactional utility: the population ``"mean"`` (what
        Figure 1 plots) or the equalized ``"level"``.
    capacity_efficiency:
        Fraction of raw cluster capacity the arbiter may promise; a value
        slightly below 1 keeps the divisible-CPU arbitration realizable by
        the integral placement.
    rt_tolerance:
        Relative response-time slack defining the transactional
        max-utility demand (see :mod:`repro.perf.queueing`).
    estimator_alpha:
        EWMA smoothing factor for the demand estimators.
    solver:
        Placement-solver tunables (:class:`SolverConfig`), including the
        ``backend`` name that picks the solver implementation from
        :mod:`repro.core.backends` (greedy heuristic vs optimal MILP).
    warm_start:
        Whether the controller keeps a cross-cycle
        :class:`~repro.core.control_state.ControlState` and offers the
        previous cycle's converged equalization level as a (verified,
        result-preserving) warm seed to the next one.  ``False``
        reproduces the fully stateless pipeline.
    warm_demand_rtol:
        Relative demand/population shift between consecutive cycles
        beyond which the warm hints are dropped and the cycle runs cold.
    warm_seed_depth:
        Bisection depth of the equalizer's verified warm bracket (the
        equalizer cascades to shallower depths when the level drifted).
    shards:
        Number of cluster shards of the hierarchical control plane
        (:class:`repro.core.sharded.ShardedController`).  ``1`` (the
        default) runs the monolithic controller; ``> 1`` partitions the
        topology, runs one sub-controller per shard, and routes
        newly-arrived jobs across shards through the top-level shard
        arbiter (:mod:`repro.core.shard_arbiter`).
    shard_workers:
        Worker processes the sharded controller fans per-shard
        ``decide()`` calls over (``1`` = in-process serial execution,
        byte-identical to the pooled path).
    shard_planner:
        Name of the registered node-to-shard partitioning strategy
        (``"round-robin"`` | ``"zone"``; see
        :func:`repro.core.shard_arbiter.make_shard_planner`).
    resilient:
        Whether the experiment runner wraps the policy in
        :class:`repro.core.resilient.ResilientController`: every decision
        is feasibility-checked before it is applied, and an exception
        escaping ``decide()`` (or an infeasible decision) degrades the
        cycle to the last-known-good placement instead of aborting the
        run.  ``False`` lets failures propagate (useful when debugging a
        policy).
    decide_budget_ms:
        Wall-clock budget for one ``decide()`` call in milliseconds
        (``None`` = no deadline).  Overruns are counted in the
        ``decide_overruns`` recorder counter; with
        ``decide_budget_strict`` they additionally degrade the cycle.
        Wall-clock is host-dependent, so registered scenarios leave this
        unset to preserve seed determinism.
    decide_budget_strict:
        Whether a budget overrun falls back to the last-known-good
        placement (strict) or merely increments the overrun accounting.
    max_consecutive_degraded:
        Abort the run with
        :class:`repro.errors.DegradedModeError` after more than this many
        consecutive degraded cycles (``None`` = degrade forever).
    latency_weight:
        Weight of the network-RTT term in the latency-aware placement
        objective (:mod:`repro.netmodel`): each app's perf model is
        shifted by ``latency_weight x`` the demand-weighted expected
        RTT of its current placement, and new instances prefer nodes in
        zones that reduce it.  ``0`` (the default) disables the
        objective entirely -- bit-identical decisions to the
        latency-blind controller, even when the scenario declares a
        ``[network]`` topology.  ``1`` prices network latency at face
        value against the response-time goal; intermediate values
        discount it.
    exact_oracle:
        Name of a registered solver backend (``"milp"`` | ``"cpsat"``)
        to run as a *background optimality oracle*: after the production
        solver decides a cycle, the oracle re-solves the same instance
        exactly (with ``min_job_rate=0`` and no change penalty, the
        differential-harness relaxation) and the relative shortfall is
        reported as the ``optimality_gap`` diagnostic, with the oracle's
        wall-time as ``exact_ms``.  The oracle runs off the critical
        path -- its answer never changes the decision, and an oracle
        failure only suppresses that cycle's gap sample.  ``None`` (the
        default) disables the telemetry entirely.
    exact_oracle_every:
        Run the oracle every N-th control cycle (>= 1).  Exact solves
        are exponentially harder than the greedy heuristic, so sparse
        sampling keeps long runs tractable.
    """

    control_cycle: Seconds = 600.0
    arbiter: Literal["bisection", "stealing"] = "bisection"
    lr_metric: Literal["mean", "level"] = "mean"
    capacity_efficiency: float = 1.0
    rt_tolerance: float = 0.05
    estimator_alpha: float = 0.3
    solver: SolverConfig = field(default_factory=SolverConfig)
    # New fields append after the seed ones so positional construction
    # of this public frozen dataclass keeps working.
    warm_start: bool = True
    warm_demand_rtol: float = 0.35
    warm_seed_depth: int = 8
    shards: int = 1
    shard_workers: int = 1
    shard_planner: str = "round-robin"
    resilient: bool = True
    decide_budget_ms: Optional[float] = None
    decide_budget_strict: bool = False
    max_consecutive_degraded: Optional[int] = None
    latency_weight: float = 0.0
    exact_oracle: Optional[str] = None
    exact_oracle_every: int = 1

    def __post_init__(self) -> None:
        if self.control_cycle <= 0:
            raise ConfigurationError("control_cycle must be positive")
        if self.arbiter not in ("bisection", "stealing"):
            raise ConfigurationError(f"unknown arbiter {self.arbiter!r}")
        if self.lr_metric not in ("mean", "level"):
            raise ConfigurationError(f"unknown lr_metric {self.lr_metric!r}")
        if not 0 < self.capacity_efficiency <= 1:
            raise ConfigurationError("capacity_efficiency must be in (0, 1]")
        if self.rt_tolerance <= 0:
            raise ConfigurationError("rt_tolerance must be positive")
        if not 0 < self.estimator_alpha <= 1:
            raise ConfigurationError("estimator_alpha must be in (0, 1]")
        if self.warm_demand_rtol < 0:
            raise ConfigurationError("warm_demand_rtol must be non-negative")
        if self.warm_seed_depth < 1:
            raise ConfigurationError("warm_seed_depth must be >= 1")
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ConfigurationError("shards must be a positive integer")
        if not isinstance(self.shard_workers, int) or self.shard_workers < 1:
            raise ConfigurationError("shard_workers must be a positive integer")
        if not self.shard_planner or not isinstance(self.shard_planner, str):
            raise ConfigurationError("shard_planner must be a non-empty string")
        if self.decide_budget_ms is not None and self.decide_budget_ms <= 0:
            raise ConfigurationError("decide_budget_ms must be positive or None")
        if self.max_consecutive_degraded is not None and (
            not isinstance(self.max_consecutive_degraded, int)
            or self.max_consecutive_degraded < 1
        ):
            raise ConfigurationError(
                "max_consecutive_degraded must be a positive integer or None"
            )
        if not math.isfinite(self.latency_weight) or self.latency_weight < 0:
            raise ConfigurationError(
                "latency_weight must be finite and non-negative"
            )
        if self.exact_oracle is not None and (
            not isinstance(self.exact_oracle, str) or not self.exact_oracle
        ):
            raise ConfigurationError(
                "exact_oracle must be a backend name or None"
            )
        if not isinstance(self.exact_oracle_every, int) or self.exact_oracle_every < 1:
            raise ConfigurationError(
                "exact_oracle_every must be a positive integer"
            )


@dataclass(frozen=True)
class NoiseConfig:
    """Measurement-noise model applied by the experiment runner.

    The controller sees *measured* quantities; multiplicative lognormal
    noise with the given relative standard deviations emulates monitoring
    error.  Zero disables a noise source.
    """

    response_time_rel_std: float = 0.03
    throughput_rel_std: float = 0.02
    service_cycles_rel_std: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "response_time_rel_std",
            "throughput_rel_std",
            "service_cycles_rel_std",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"NoiseConfig.{name} must be non-negative")


def validate_budget(change_budget: Optional[int]) -> None:
    """Shared validation for optional change budgets."""
    if change_budget is not None and change_budget < 0:
        raise ConfigurationError("change_budget must be non-negative or None")

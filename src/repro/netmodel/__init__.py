"""Latency-aware edge-cloud network model.

Makes network position a first-class input to the control loop:

* :class:`ZoneTopology` -- named zones, a symmetric inter-zone RTT
  matrix, and per-zone user populations, with nearest-serving-zone
  routing (:mod:`repro.netmodel.topology`);
* :class:`NetworkAwareModel` -- end-to-end response time composing the
  queueing models with the placement's expected network RTT
  (:mod:`repro.netmodel.model`);
* :class:`NetworkSpec` / :class:`ZoneSpec` -- the declarative
  ``[network]`` block of a scenario spec (:mod:`repro.netmodel.spec`);
* :class:`NetworkContext` -- the topology bound to a concrete cluster,
  as consumed by the controller (:mod:`repro.netmodel.context`).

Scenarios without a ``[network]`` block are untouched: the subsystem is
strictly additive, and ``ControllerConfig.latency_weight = 0`` keeps
the control loop bit-identical to the latency-blind baseline even when
a topology is present (only telemetry is recorded).
"""

from .context import NetworkContext
from .model import NetworkAwareModel
from .spec import NetworkSpec, ZoneSpec
from .topology import ZoneTopology

__all__ = [
    "NetworkAwareModel",
    "NetworkContext",
    "NetworkSpec",
    "ZoneSpec",
    "ZoneTopology",
]

"""Zone topology: inter-zone RTTs and where the users are.

The paper prices SLAs purely in queueing response time; edge-cloud
placement systems (Tetris, MORPHOSYS -- see PAPERS.md) show that the
*network position* of an instance matters just as much once demand
originates far from where it is served.  :class:`ZoneTopology` is the
declarative core of that model: a set of named zones, a symmetric
inter-zone RTT matrix, and a per-zone user population.

Requests are routed to the *nearest serving zone*: with user weight
``w_z`` (the zone's share of the total user population) and serving-zone
set ``S``, the demand-weighted expected network round trip is::

    E[RTT | S] = sum_z  w_z * min_{s in S} rtt(z, s)

which is what :class:`~repro.netmodel.model.NetworkAwareModel` adds to
the queueing response time, and ``in_zone_fraction(S)`` -- the user mass
whose own zone is serving -- is the locality telemetry reported by the
experiment runner.

The class is a frozen dataclass over tuples, so instances hash, compare,
and pickle (the sharded control plane ships them to pool workers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import ConfigurationError

__all__ = ["ZoneTopology"]


@dataclass(frozen=True)
class ZoneTopology:
    """Named zones, symmetric inter-zone RTTs (ms), per-zone users.

    Attributes
    ----------
    zones:
        Unique, non-empty zone names; index order fixes the matrix rows.
    rtt_ms:
        Square symmetric matrix of inter-zone round-trip times in
        milliseconds with a zero diagonal (in-zone traffic is free at
        this modeling granularity).
    users:
        Non-negative per-zone user population (any scale; only the
        normalized shares matter).  At least one zone must hold users.
        Zones may hold users without hosting any node -- a pure demand
        origin, e.g. a last-mile aggregation point.
    """

    zones: tuple[str, ...]
    rtt_ms: tuple[tuple[float, ...], ...]
    users: tuple[float, ...]

    def __post_init__(self) -> None:
        zones = tuple(self.zones)
        rtt = tuple(tuple(float(v) for v in row) for row in self.rtt_ms)
        users = tuple(float(u) for u in self.users)
        object.__setattr__(self, "zones", zones)
        object.__setattr__(self, "rtt_ms", rtt)
        object.__setattr__(self, "users", users)

        if not zones:
            raise ConfigurationError("at least one zone is required")
        if any(not isinstance(z, str) or not z for z in zones):
            raise ConfigurationError(f"zone names must be non-empty strings: {zones}")
        if len(set(zones)) != len(zones):
            raise ConfigurationError(f"duplicate zone names in {zones}")
        n = len(zones)
        if len(rtt) != n or any(len(row) != n for row in rtt):
            raise ConfigurationError(
                f"rtt_ms must be a {n}x{n} matrix matching the zone list"
            )
        for i in range(n):
            if rtt[i][i] != 0.0:
                raise ConfigurationError(
                    f"rtt_ms diagonal must be zero (zone {zones[i]!r})"
                )
            for j in range(n):
                v = rtt[i][j]
                if not math.isfinite(v) or v < 0:
                    raise ConfigurationError(
                        f"rtt_ms[{zones[i]!r}][{zones[j]!r}] must be finite "
                        f"and non-negative, got {v}"
                    )
                if rtt[i][j] != rtt[j][i]:
                    raise ConfigurationError(
                        f"rtt_ms must be symmetric: "
                        f"[{zones[i]!r}][{zones[j]!r}] = {rtt[i][j]} but "
                        f"[{zones[j]!r}][{zones[i]!r}] = {rtt[j][i]}"
                    )
        if len(users) != n:
            raise ConfigurationError("one user population per zone is required")
        if any(not math.isfinite(u) or u < 0 for u in users):
            raise ConfigurationError(
                f"user populations must be finite and non-negative: {users}"
            )
        total = sum(users)
        if total <= 0:
            raise ConfigurationError("at least one zone must hold users")
        object.__setattr__(
            self, "_index", {zone: i for i, zone in enumerate(zones)}
        )
        object.__setattr__(
            self, "_weights", tuple(u / total for u in users)
        )

    # -- lookups --------------------------------------------------------
    @property
    def num_zones(self) -> int:
        return len(self.zones)

    def _zone_index(self, zone: str) -> int:
        index: Mapping[str, int] = self._index  # type: ignore[attr-defined]
        try:
            return index[zone]
        except KeyError:
            raise ConfigurationError(
                f"unknown zone {zone!r} (declared: {', '.join(self.zones)})"
            ) from None

    def rtt(self, zone_a: str, zone_b: str) -> float:
        """Round-trip time between two zones in milliseconds."""
        return self.rtt_ms[self._zone_index(zone_a)][self._zone_index(zone_b)]

    def weight(self, zone: str) -> float:
        """The zone's normalized share of the total user population."""
        weights: tuple[float, ...] = self._weights  # type: ignore[attr-defined]
        return weights[self._zone_index(zone)]

    # -- routing model --------------------------------------------------
    def expected_rtt_ms(self, serving_zones: Iterable[str]) -> float:
        """Demand-weighted expected RTT (ms) under nearest-zone routing.

        Every user zone routes to its closest serving zone.  An empty
        serving set yields 0.0: before the first placement there is no
        instance to measure against, and the controller's probe model
        must stay well-defined.
        """
        serving = sorted({self._zone_index(z) for z in serving_zones})
        if not serving:
            return 0.0
        weights: tuple[float, ...] = self._weights  # type: ignore[attr-defined]
        return sum(
            w * min(self.rtt_ms[z][s] for s in serving)
            for z, w in enumerate(weights)
            if w > 0.0
        )

    def expected_rtt_s(self, serving_zones: Iterable[str]) -> float:
        """:meth:`expected_rtt_ms` converted to seconds."""
        return self.expected_rtt_ms(serving_zones) / 1000.0

    def in_zone_fraction(self, serving_zones: Iterable[str]) -> float:
        """User mass served from its own zone (0 for an empty set)."""
        serving = {self._zone_index(z) for z in serving_zones}
        if not serving:
            return 0.0
        weights: tuple[float, ...] = self._weights  # type: ignore[attr-defined]
        return sum(w for z, w in enumerate(weights) if z in serving)

    def placement_gain_ms(self, serving_zones: Iterable[str]) -> dict[str, float]:
        """Marginal expected-RTT reduction (ms) of adding each zone.

        For the current serving set ``S`` this returns, per zone ``z``,
        ``E[RTT | S] - E[RTT | S + {z}]`` -- how much the expected
        network round trip drops if an instance appears in ``z``.  With
        an empty ``S`` the baseline is the *worst* single-zone placement,
        so the gains still rank zones by desirability on the very first
        cycle.  The controller turns this ranking into the solver's
        preferred-node ordering.
        """
        serving = sorted({self._zone_index(z) for z in serving_zones})
        if serving:
            base = self.expected_rtt_ms(self.zones[i] for i in serving)
        else:
            base = max(
                self.expected_rtt_ms((zone,)) for zone in self.zones
            )
        gains: dict[str, float] = {}
        for i, zone in enumerate(self.zones):
            with_zone = {*serving, i}
            cost = self.expected_rtt_ms(self.zones[j] for j in with_zone)
            gains[zone] = base - cost
        return gains

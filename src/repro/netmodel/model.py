"""End-to-end response time: queueing delay plus network round trip.

:class:`NetworkAwareModel` wraps any
:class:`~repro.perf.queueing.TransactionalPerfModel` and adds a fixed
network delay -- the demand-weighted expected RTT from the user zones to
the app's serving zones (see
:meth:`repro.netmodel.topology.ZoneTopology.expected_rtt_s`) -- so that
everything downstream of the model (utility evaluation, the arbiter's
probe allocations, ``allocation_for_rt`` inversions) prices *total*
latency rather than queueing latency alone.

Semantics of the composition:

* ``response_time`` and ``min_response_time`` shift up by the delay;
  the model stays monotone non-increasing in allocation.
* ``allocation_for_rt(target)`` inverts against ``target - delay``:
  CPU can only buy down the queueing share, so a target inside the
  network delay is infeasible and the inner model raises its usual
  :class:`~repro.errors.ModelError`.
* ``max_utility_demand`` **delegates unchanged**: the demand knee is
  where extra CPU stops improving response time, and no amount of CPU
  reduces the network term.  The latency penalty instead bites through
  lower utility at every allocation -- which is exactly what lets the
  placement objective trade churn against moving instances closer to
  the users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..perf.queueing import (
    DEFAULT_RT_TOLERANCE,
    TransactionalPerfModel,
)
from ..types import Mhz, Seconds

__all__ = ["NetworkAwareModel"]


@dataclass(frozen=True)
class NetworkAwareModel:
    """A transactional perf model shifted by a fixed network delay (s)."""

    inner: TransactionalPerfModel
    network_delay: Seconds

    def __post_init__(self) -> None:
        delay = float(self.network_delay)
        if not math.isfinite(delay) or delay < 0:
            raise ConfigurationError(
                f"network_delay must be finite and non-negative, got {delay}"
            )
        object.__setattr__(self, "network_delay", delay)

    @property
    def min_response_time(self) -> Seconds:
        return self.inner.min_response_time + self.network_delay

    def response_time(self, allocation: Mhz) -> Seconds:
        return self.inner.response_time(allocation) + self.network_delay

    def throughput(self, allocation: Mhz) -> float:
        return self.inner.throughput(allocation)

    def utilization(self, allocation: Mhz) -> float:
        return self.inner.utilization(allocation)

    def allocation_for_rt(self, rt_target: Seconds) -> Mhz:
        # The inner model raises ModelError when the queueing share of
        # the target dips below its floor, with its own edge semantics
        # (closed admits the exact floor, open does not) -- delegate so
        # the wrapped model keeps them.
        return self.inner.allocation_for_rt(rt_target - self.network_delay)

    def max_utility_demand(
        self, rt_tolerance: float = DEFAULT_RT_TOLERANCE
    ) -> Mhz:
        return self.inner.max_utility_demand(rt_tolerance)

"""The ``[network]`` block of a scenario spec.

Pure-data counterpart of :class:`~repro.netmodel.topology.ZoneTopology`,
following the :class:`~repro.faults.models.FaultPlanSpec` convention:
the fragment lives with its domain, validates itself at construction,
and :mod:`repro.api.spec` only handles dict/TOML (de)serialization.

A spec declares the zones (with their user populations) and the RTT
matrix in zone-declaration order::

    [network]
    rtt_ms = [[0.0, 20.0], [20.0, 0.0]]

    [[network.zones]]
    name = "edge"
    users = 70.0

    [[network.zones]]
    name = "cloud"
    users = 30.0

The block is schema-additive: ``repro.scenario/v1`` specs without it
behave exactly as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .topology import ZoneTopology

__all__ = ["NetworkSpec", "ZoneSpec"]


@dataclass(frozen=True)
class ZoneSpec:
    """One declared zone: its name and user population."""

    name: str
    users: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("zone name must be a non-empty string")
        if not math.isfinite(self.users) or self.users < 0:
            raise ConfigurationError(
                f"zone {self.name!r}: users must be finite and non-negative"
            )


@dataclass(frozen=True)
class NetworkSpec:
    """The ``network`` block: declared zones plus the inter-zone RTTs.

    Cross-field consistency (matrix shape, symmetry, zero diagonal, at
    least one populated zone) is delegated to :class:`ZoneTopology`,
    built eagerly so a bad spec fails at construction rather than at
    materialize time.
    """

    zones: tuple[ZoneSpec, ...]
    rtt_ms: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        zones = tuple(self.zones)
        rtt = tuple(tuple(float(v) for v in row) for row in self.rtt_ms)
        object.__setattr__(self, "zones", zones)
        object.__setattr__(self, "rtt_ms", rtt)
        if not zones:
            raise ConfigurationError("network.zones must be non-empty")
        self.build()  # validate eagerly; cheap and pure

    def zone_names(self) -> tuple[str, ...]:
        return tuple(z.name for z in self.zones)

    def build(self) -> ZoneTopology:
        """The validated runtime topology this spec describes."""
        return ZoneTopology(
            zones=self.zone_names(),
            rtt_ms=self.rtt_ms,
            users=tuple(z.users for z in self.zones),
        )

"""The network context handed to the placement controller.

Bundles the :class:`~repro.netmodel.topology.ZoneTopology` with the
node-id -> zone map of the materialized cluster, and answers the two
questions the control loop asks each cycle: *what is the expected
network RTT of this app's current placement* (folded into the perf
model, see :func:`repro.perf.estimator.with_network_delay`) and *which
nodes should new instances prefer* (turned into the solver's
preferred-node ranking).

Plain dict + frozen dataclass so the context pickles with the sharded
controller's pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import ConfigurationError
from .topology import ZoneTopology

__all__ = ["NetworkContext"]


@dataclass(frozen=True)
class NetworkContext:
    """A zone topology bound to a concrete cluster's node-zone map."""

    topology: ZoneTopology
    node_zone: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        node_zone = dict(self.node_zone)
        object.__setattr__(self, "node_zone", node_zone)
        for node_id, zone in node_zone.items():
            if zone not in self.topology.zones:
                raise ConfigurationError(
                    f"node {node_id!r} is in zone {zone!r}, which the "
                    f"network topology does not declare "
                    f"(declared: {', '.join(self.topology.zones)})"
                )

    def serving_zones(self, nodes: Iterable[str]) -> tuple[str, ...]:
        """Sorted unique zones of the given node ids."""
        zones = {self.node_zone[n] for n in nodes if n in self.node_zone}
        return tuple(sorted(zones))

    def expected_rtt_s(self, nodes: Iterable[str]) -> float:
        """Expected network RTT (s) of serving from the given nodes."""
        return self.topology.expected_rtt_s(self.serving_zones(nodes))

    def in_zone_fraction(self, nodes: Iterable[str]) -> float:
        """User mass served from its own zone by the given nodes."""
        return self.topology.in_zone_fraction(self.serving_zones(nodes))

    def preferred_nodes(
        self, nodes: Iterable[str], current_nodes: Iterable[str]
    ) -> tuple[tuple[str, int], ...]:
        """Latency rank per candidate node: ``(node_id, rank)`` pairs.

        Zones are ranked by the marginal expected-RTT reduction an
        instance there would buy over the app's *current* serving set
        (ties broken by zone name for determinism); only zones with a
        strictly positive gain appear -- everything else is left to the
        solver's free-CPU ordering.  Lower rank = more preferred.
        """
        gains = self.topology.placement_gain_ms(
            self.serving_zones(current_nodes)
        )
        ranked = [
            zone
            for zone, gain in sorted(gains.items(), key=lambda kv: (-kv[1], kv[0]))
            if gain > 1e-9
        ]
        rank_of = {zone: rank for rank, zone in enumerate(ranked)}
        pairs = []
        for node_id in sorted(set(nodes)):
            zone = self.node_zone.get(node_id)
            if zone in rank_of:
                pairs.append((node_id, rank_of[zone]))
        return tuple(pairs)

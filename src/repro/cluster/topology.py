"""Cluster topology builders.

Convenience constructors for the node populations used in the paper's
evaluation and in the extended experiments: homogeneous clusters, mixed
"racks" of different hardware generations, and the exact 25-node setup of
the HPDC'08 evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..types import Megabytes, Mhz
from .cluster import Cluster
from .node import NodeSpec

#: Defaults matching the paper's evaluation: 25 nodes, 4 processors each.
PAPER_NODE_COUNT = 25
PAPER_PROCESSORS = 4
#: Per-processor speed chosen so the cluster capacity (300 GHz) sits inside
#: the 0-450 GHz range of the paper's Figure 2 demand curves.
PAPER_MHZ_PER_PROCESSOR: Mhz = 3000.0
#: Node memory sized so that exactly three jobs (1200 MB each, see
#: :mod:`repro.experiments.scenario`) fit on a node together with one web
#: instance (400 MB) -- "only three jobs will fit on a node at once".
PAPER_NODE_MEMORY_MB: Megabytes = 4000.0


def homogeneous_cluster(
    num_nodes: int,
    processors: int = PAPER_PROCESSORS,
    mhz_per_processor: Mhz = PAPER_MHZ_PER_PROCESSOR,
    memory_mb: Megabytes = PAPER_NODE_MEMORY_MB,
    prefix: str = "node",
) -> Cluster:
    """Build a cluster of ``num_nodes`` identical nodes.

    Node ids are ``f"{prefix}{i:03d}"`` for stable ordering.
    """
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be >= 1")
    return Cluster(
        NodeSpec(
            node_id=f"{prefix}{i:03d}",
            processors=processors,
            mhz_per_processor=mhz_per_processor,
            memory_mb=memory_mb,
        )
        for i in range(num_nodes)
    )


def paper_cluster() -> Cluster:
    """The evaluation cluster of the paper: 25 nodes x 4 processors."""
    return homogeneous_cluster(PAPER_NODE_COUNT)


@dataclass(frozen=True, slots=True)
class NodeClass:
    """A named class of identical nodes inside a heterogeneous cluster.

    Scenario specs describe mixed-hardware topologies as a list of node
    classes (e.g. a "modern" rack and a "legacy" rack); node ids encode
    the class name -- ``f"{name}-{i:03d}"`` -- for stable ordering and
    readable failure injection targets.

    The optional ``zone`` places every node of the class in a named
    network zone (see :mod:`repro.netmodel`): several classes may share a
    zone (e.g. two hardware generations in the same edge site).  When
    omitted, the class name doubles as the zone -- exactly the id-prefix
    convention the zone shard planner and zone outages already use.
    """

    name: str
    count: int
    processors: int
    mhz_per_processor: Mhz
    memory_mb: Megabytes
    # New fields append after the seed ones so positional construction
    # of this public frozen dataclass keeps working.
    zone: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node class name must be non-empty")
        if self.zone is not None and (
            not isinstance(self.zone, str) or not self.zone
        ):
            raise ConfigurationError(
                f"node class {self.name!r}: zone must be a non-empty string "
                f"or None"
            )
        if self.count < 1:
            raise ConfigurationError(f"node class {self.name!r}: count must be >= 1")
        if self.processors < 1:
            raise ConfigurationError(
                f"node class {self.name!r}: processors must be >= 1"
            )
        if self.mhz_per_processor <= 0:
            raise ConfigurationError(
                f"node class {self.name!r}: mhz_per_processor must be positive"
            )
        if self.memory_mb <= 0:
            raise ConfigurationError(
                f"node class {self.name!r}: memory_mb must be positive"
            )

    @property
    def cpu_capacity(self) -> Mhz:
        """Total CPU capacity contributed by this class."""
        return self.count * self.processors * self.mhz_per_processor


def cluster_from_classes(classes: Sequence[NodeClass]) -> Cluster:
    """Build a heterogeneous cluster from named node classes.

    The declarative counterpart of :func:`heterogeneous_cluster`: each
    class contributes ``count`` identical nodes with ids
    ``f"{cls.name}-{i:03d}"``.  Class names must be unique.
    """
    classes = tuple(classes)
    if not classes:
        raise ConfigurationError("node classes must be non-empty")
    names = [c.name for c in classes]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate node class names in {names}")
    return Cluster(
        NodeSpec(
            node_id=f"{cls.name}-{i:03d}",
            processors=cls.processors,
            mhz_per_processor=cls.mhz_per_processor,
            memory_mb=cls.memory_mb,
        )
        for cls in classes
        for i in range(cls.count)
    )


def zone_map_from_classes(classes: Sequence[NodeClass]) -> dict[str, str]:
    """Node-id -> zone map for a :func:`cluster_from_classes` cluster.

    Each node lands in its class's declared ``zone``, or -- for legacy
    classes without one -- in a zone named after the class, which matches
    the ``<zone>-NNN`` id-prefix parse used before zones were explicit.
    """
    return {
        f"{cls.name}-{i:03d}": (cls.zone or cls.name)
        for cls in classes
        for i in range(cls.count)
    }


def heterogeneous_cluster(rack_specs: Sequence[tuple[int, int, Mhz, Megabytes]]) -> Cluster:
    """Build a cluster from racks of differing hardware.

    Parameters
    ----------
    rack_specs:
        Sequence of ``(count, processors, mhz_per_processor, memory_mb)``
        tuples, one per rack.  Node ids encode the rack:
        ``rack{r}-node{i:03d}``.
    """
    if not rack_specs:
        raise ConfigurationError("rack_specs must be non-empty")
    nodes: list[NodeSpec] = []
    for rack, (count, processors, mhz, memory) in enumerate(rack_specs):
        if count < 1:
            raise ConfigurationError(f"rack {rack}: count must be >= 1")
        nodes.extend(
            NodeSpec(
                node_id=f"rack{rack}-node{i:03d}",
                processors=processors,
                mhz_per_processor=mhz,
                memory_mb=memory,
            )
            for i in range(count)
        )
    return Cluster(nodes)

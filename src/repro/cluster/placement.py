"""Placement matrices.

A :class:`Placement` is the controller's complete answer for one control
cycle: which VMs run on which nodes and how much CPU each is granted.
Entries are self-contained (they carry the VM's memory footprint and
workload kind) so a placement can be validated and diffed without access
to the live VM registry.

Placements are *value objects*: the solver builds a new one each cycle and
the actions planner (:mod:`repro.core.actions_planner`) diffs it against
the previous one.

The structure is **indexed by node**: alongside the VM-id map it maintains
per-node entry tables and running CPU/memory aggregates, updated on every
:meth:`Placement.add` / :meth:`Placement.remove` / :meth:`Placement.update_cpu`.
That turns :meth:`entries_on`, :meth:`cpu_used`, :meth:`memory_used`,
:meth:`by_node` and :meth:`validate` -- the queries on the solver's, the
actions planner's, the runner's and the recorder's hot paths -- from
full-table scans into O(per-node) lookups.  The aggregates are maintained
incrementally (sums drift by float round-off only, orders of magnitude
below the validation tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, KeysView, Mapping, Optional

from ..errors import PlacementError
from ..types import Megabytes, Mhz, WorkloadKind
from .cluster import Cluster

#: CPU/memory slack tolerated by validation, to absorb float round-off.
_EPS = 1e-6


@dataclass(slots=True, unsafe_hash=True)
class PlacementEntry:
    """One VM's assignment: where it runs and what it is granted.

    Immutable by convention (``Placement`` replaces entries, never
    mutates them -- see :meth:`with_cpu`); not ``frozen=True`` because
    the solver constructs one to two entries per placed VM every control
    cycle and frozen-dataclass construction costs ~2.3x
    (``object.__setattr__`` per field) on that hot path.
    ``unsafe_hash`` keeps the field-based hash a frozen dataclass would
    have generated, consistent with ``__eq__``.
    """

    vm_id: str
    node_id: str
    cpu_mhz: Mhz
    memory_mb: Megabytes
    kind: WorkloadKind

    def __post_init__(self) -> None:
        if self.cpu_mhz < 0:
            raise PlacementError(f"vm {self.vm_id}: negative CPU grant")
        if self.memory_mb <= 0:
            raise PlacementError(f"vm {self.vm_id}: non-positive memory footprint")

    @classmethod
    def trusted(
        cls,
        vm_id: str,
        node_id: str,
        cpu_mhz: Mhz,
        memory_mb: Megabytes,
        kind: WorkloadKind,
    ) -> "PlacementEntry":
        """Validation-free constructor for the solver's hot path.

        The solver creates one to two entries per placed VM every control
        cycle from grants it just clamped non-negative and footprints the
        request types already validated; re-checking per entry is pure
        overhead.  External callers must use the normal constructor: this
        one skips ``__post_init__``.
        """
        self = object.__new__(cls)
        self.vm_id = vm_id
        self.node_id = node_id
        self.cpu_mhz = cpu_mhz
        self.memory_mb = memory_mb
        self.kind = kind
        return self

    def with_cpu(self, cpu_mhz: Mhz) -> "PlacementEntry":
        """Copy of this entry with a different CPU grant.

        Trusted construction: this runs once per boosted job per control
        cycle, and every field but the grant was validated when ``self``
        was built (the water-fill grants it receives are non-negative).
        """
        return PlacementEntry.trusted(
            self.vm_id, self.node_id, cpu_mhz, self.memory_mb, self.kind
        )


class Placement:
    """Immutable-by-convention map of VM id -> :class:`PlacementEntry`."""

    __slots__ = ("_entries", "_node_entries", "_node_cpu", "_node_mem")

    def __init__(self, entries: Iterable[PlacementEntry] = ()) -> None:
        self._entries: dict[str, PlacementEntry] = {}
        #: node_id -> (vm_id -> entry), in insertion order per node.
        self._node_entries: dict[str, dict[str, PlacementEntry]] = {}
        #: node_id -> running CPU / memory totals (keys mirror _node_entries).
        self._node_cpu: dict[str, float] = {}
        self._node_mem: dict[str, float] = {}
        for entry in entries:
            if entry.vm_id in self._entries:
                raise PlacementError(f"vm {entry.vm_id} placed twice")
            self._insert(entry)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PlacementEntry]:
        return iter(self._entries.values())

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._entries

    def get(self, vm_id: str) -> Optional[PlacementEntry]:
        """Entry for ``vm_id`` or ``None`` when not placed."""
        return self._entries.get(vm_id)

    def vm_ids(self) -> KeysView[str]:
        """Live view of the placed VM ids (supports set algebra).

        The action planner diffs placements through this every control
        cycle; a view avoids materializing throwaway id sets.
        """
        return self._entries.keys()

    def entry(self, vm_id: str) -> PlacementEntry:
        """Entry for ``vm_id``; raises :class:`PlacementError` if absent."""
        try:
            return self._entries[vm_id]
        except KeyError:
            raise PlacementError(f"vm {vm_id!r} is not placed") from None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def copy(self) -> "Placement":
        """Shallow copy (entries are frozen, so this is a safe snapshot)."""
        clone = Placement.__new__(Placement)
        clone._entries = dict(self._entries)
        clone._node_entries = {
            node_id: dict(entries) for node_id, entries in self._node_entries.items()
        }
        clone._node_cpu = dict(self._node_cpu)
        clone._node_mem = dict(self._node_mem)
        return clone

    def add(self, entry: PlacementEntry) -> None:
        """Insert a new entry; the VM must not already be placed."""
        if entry.vm_id in self._entries:
            raise PlacementError(f"vm {entry.vm_id} already placed")
        self._insert(entry)

    def remove(self, vm_id: str) -> PlacementEntry:
        """Remove and return the entry for ``vm_id``."""
        try:
            entry = self._entries.pop(vm_id)
        except KeyError:
            raise PlacementError(f"vm {vm_id!r} is not placed") from None
        node_id = entry.node_id
        node_entries = self._node_entries[node_id]
        del node_entries[vm_id]
        if node_entries:
            self._node_cpu[node_id] -= entry.cpu_mhz
            self._node_mem[node_id] -= entry.memory_mb
        else:
            # Dropping emptied nodes keeps aggregates drift-free across
            # long churn and keeps by_node() free of empty groups.
            del self._node_entries[node_id]
            del self._node_cpu[node_id]
            del self._node_mem[node_id]
        return entry

    def update_cpu(self, vm_id: str, cpu_mhz: Mhz) -> None:
        """Replace the CPU grant of an existing entry."""
        old = self.entry(vm_id)
        new = old.with_cpu(cpu_mhz)
        self._entries[vm_id] = new
        self._node_entries[old.node_id][vm_id] = new
        self._node_cpu[old.node_id] += new.cpu_mhz - old.cpu_mhz

    def _insert(self, entry: PlacementEntry) -> None:
        self._entries[entry.vm_id] = entry
        node_entries = self._node_entries.get(entry.node_id)
        if node_entries is None:
            self._node_entries[entry.node_id] = {entry.vm_id: entry}
            self._node_cpu[entry.node_id] = entry.cpu_mhz
            self._node_mem[entry.node_id] = entry.memory_mb
        else:
            node_entries[entry.vm_id] = entry
            self._node_cpu[entry.node_id] += entry.cpu_mhz
            self._node_mem[entry.node_id] += entry.memory_mb

    # ------------------------------------------------------------------
    # Per-node aggregation
    # ------------------------------------------------------------------
    def entries_on(self, node_id: str) -> list[PlacementEntry]:
        """All entries hosted on ``node_id``."""
        node_entries = self._node_entries.get(node_id)
        return list(node_entries.values()) if node_entries else []

    def cpu_used(self, node_id: str) -> Mhz:
        """Total CPU granted on ``node_id``."""
        return self._node_cpu.get(node_id, 0.0)

    def memory_used(self, node_id: str) -> Megabytes:
        """Total memory occupied on ``node_id``."""
        return self._node_mem.get(node_id, 0.0)

    def total_cpu(self, kind: Optional[WorkloadKind] = None) -> Mhz:
        """Total CPU granted, optionally restricted to one workload kind."""
        if kind is None:
            return sum(self._node_cpu.values())
        return sum(e.cpu_mhz for e in self._entries.values() if e.kind is kind)

    def by_node(self) -> Mapping[str, list[PlacementEntry]]:
        """Entries grouped by hosting node."""
        return {
            node_id: list(entries.values())
            for node_id, entries in self._node_entries.items()
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, cluster: Cluster) -> None:
        """Check feasibility against ``cluster``.

        Verifies that every hosting node exists and is active, and that no
        node's CPU or memory capacity is exceeded (within float tolerance).
        O(nodes used) thanks to the maintained aggregates.

        Raises
        ------
        PlacementError
            Describing the first violation found.
        """
        for node_id in self._node_entries:
            if node_id not in cluster:
                raise PlacementError(f"placement references unknown node {node_id!r}")
            if not cluster.is_active(node_id):
                raise PlacementError(f"placement uses failed node {node_id!r}")
            node = cluster.node(node_id)
            cpu = self._node_cpu[node_id]
            if cpu > node.cpu_capacity * (1 + _EPS) + _EPS:
                raise PlacementError(
                    f"node {node_id}: CPU over-committed "
                    f"({cpu:.1f} > {node.cpu_capacity:.1f} MHz)"
                )
            mem = self._node_mem[node_id]
            if mem > node.memory_mb * (1 + _EPS) + _EPS:
                raise PlacementError(
                    f"node {node_id}: memory over-committed "
                    f"({mem:.1f} > {node.memory_mb:.1f} MB)"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement({len(self._entries)} VMs, {self.total_cpu():.0f} MHz)"

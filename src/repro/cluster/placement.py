"""Placement matrices.

A :class:`Placement` is the controller's complete answer for one control
cycle: which VMs run on which nodes and how much CPU each is granted.
Entries are self-contained (they carry the VM's memory footprint and
workload kind) so a placement can be validated and diffed without access
to the live VM registry.

Placements are *value objects*: the solver builds a new one each cycle and
the actions planner (:mod:`repro.core.actions_planner`) diffs it against
the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Optional

from ..errors import PlacementError
from ..types import Megabytes, Mhz, WorkloadKind
from .cluster import Cluster

#: CPU/memory slack tolerated by validation, to absorb float round-off.
_EPS = 1e-6


@dataclass(frozen=True, slots=True)
class PlacementEntry:
    """One VM's assignment: where it runs and what it is granted."""

    vm_id: str
    node_id: str
    cpu_mhz: Mhz
    memory_mb: Megabytes
    kind: WorkloadKind

    def __post_init__(self) -> None:
        if self.cpu_mhz < 0:
            raise PlacementError(f"vm {self.vm_id}: negative CPU grant")
        if self.memory_mb <= 0:
            raise PlacementError(f"vm {self.vm_id}: non-positive memory footprint")

    def with_cpu(self, cpu_mhz: Mhz) -> "PlacementEntry":
        """Copy of this entry with a different CPU grant."""
        return replace(self, cpu_mhz=cpu_mhz)


class Placement:
    """Immutable-by-convention map of VM id -> :class:`PlacementEntry`."""

    def __init__(self, entries: Iterable[PlacementEntry] = ()) -> None:
        self._entries: dict[str, PlacementEntry] = {}
        for entry in entries:
            if entry.vm_id in self._entries:
                raise PlacementError(f"vm {entry.vm_id} placed twice")
            self._entries[entry.vm_id] = entry

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PlacementEntry]:
        return iter(self._entries.values())

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._entries

    def get(self, vm_id: str) -> Optional[PlacementEntry]:
        """Entry for ``vm_id`` or ``None`` when not placed."""
        return self._entries.get(vm_id)

    def entry(self, vm_id: str) -> PlacementEntry:
        """Entry for ``vm_id``; raises :class:`PlacementError` if absent."""
        try:
            return self._entries[vm_id]
        except KeyError:
            raise PlacementError(f"vm {vm_id!r} is not placed") from None

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def copy(self) -> "Placement":
        """Shallow copy (entries are frozen, so this is a safe snapshot)."""
        return Placement(self._entries.values())

    def add(self, entry: PlacementEntry) -> None:
        """Insert a new entry; the VM must not already be placed."""
        if entry.vm_id in self._entries:
            raise PlacementError(f"vm {entry.vm_id} already placed")
        self._entries[entry.vm_id] = entry

    def remove(self, vm_id: str) -> PlacementEntry:
        """Remove and return the entry for ``vm_id``."""
        try:
            return self._entries.pop(vm_id)
        except KeyError:
            raise PlacementError(f"vm {vm_id!r} is not placed") from None

    def update_cpu(self, vm_id: str, cpu_mhz: Mhz) -> None:
        """Replace the CPU grant of an existing entry."""
        self._entries[vm_id] = self.entry(vm_id).with_cpu(cpu_mhz)

    # ------------------------------------------------------------------
    # Per-node aggregation
    # ------------------------------------------------------------------
    def entries_on(self, node_id: str) -> list[PlacementEntry]:
        """All entries hosted on ``node_id``."""
        return [e for e in self._entries.values() if e.node_id == node_id]

    def cpu_used(self, node_id: str) -> Mhz:
        """Total CPU granted on ``node_id``."""
        return sum(e.cpu_mhz for e in self._entries.values() if e.node_id == node_id)

    def memory_used(self, node_id: str) -> Megabytes:
        """Total memory occupied on ``node_id``."""
        return sum(e.memory_mb for e in self._entries.values() if e.node_id == node_id)

    def total_cpu(self, kind: Optional[WorkloadKind] = None) -> Mhz:
        """Total CPU granted, optionally restricted to one workload kind."""
        return sum(
            e.cpu_mhz
            for e in self._entries.values()
            if kind is None or e.kind is kind
        )

    def by_node(self) -> Mapping[str, list[PlacementEntry]]:
        """Entries grouped by hosting node."""
        grouped: dict[str, list[PlacementEntry]] = {}
        for entry in self._entries.values():
            grouped.setdefault(entry.node_id, []).append(entry)
        return grouped

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, cluster: Cluster) -> None:
        """Check feasibility against ``cluster``.

        Verifies that every hosting node exists and is active, and that no
        node's CPU or memory capacity is exceeded (within float tolerance).

        Raises
        ------
        PlacementError
            Describing the first violation found.
        """
        for node_id, entries in self.by_node().items():
            if node_id not in cluster:
                raise PlacementError(f"placement references unknown node {node_id!r}")
            if not cluster.is_active(node_id):
                raise PlacementError(f"placement uses failed node {node_id!r}")
            node = cluster.node(node_id)
            cpu = sum(e.cpu_mhz for e in entries)
            if cpu > node.cpu_capacity * (1 + _EPS) + _EPS:
                raise PlacementError(
                    f"node {node_id}: CPU over-committed "
                    f"({cpu:.1f} > {node.cpu_capacity:.1f} MHz)"
                )
            mem = sum(e.memory_mb for e in entries)
            if mem > node.memory_mb * (1 + _EPS) + _EPS:
                raise PlacementError(
                    f"node {node_id}: memory over-committed "
                    f"({mem:.1f} > {node.memory_mb:.1f} MB)"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement({len(self._entries)} VMs, {self.total_cpu():.0f} MHz)"

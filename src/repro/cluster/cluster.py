"""Cluster: the collection of nodes managed by one placement controller.

Tracks which nodes are *active* (powered and healthy).  Failure injection
(:meth:`Cluster.fail_node` / :meth:`Cluster.restore_node`) removes and
returns capacity; the experiment runner is responsible for rescuing the
workloads that were placed on a failed node.

Brownouts (:meth:`Cluster.set_brownout` / :meth:`Cluster.clear_brownout`)
model partial degradation: the node stays active but every lookup returns
a spec whose per-processor speed is derated to the brownout fraction, so
controllers and placement validation see the reduced capacity without any
special-casing.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

from ..errors import ConfigurationError, UnknownEntityError
from ..types import Megabytes, Mhz
from .node import NodeSpec


class Cluster:
    """An ordered set of :class:`~repro.cluster.node.NodeSpec` with health state."""

    def __init__(self, nodes: Iterable[NodeSpec]) -> None:
        self._nodes: dict[str, NodeSpec] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ConfigurationError(f"duplicate node id {node.node_id!r}")
            self._nodes[node.node_id] = node
        if not self._nodes:
            raise ConfigurationError("cluster must contain at least one node")
        self._failed: set[str] = set()
        self._brownout: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeSpec]:
        return iter(self._effective(n) for n in self._nodes.values())

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> NodeSpec:
        """Return the node with the given id.

        Raises
        ------
        UnknownEntityError
            If no such node exists.
        """
        try:
            return self._effective(self._nodes[node_id])
        except KeyError:
            raise UnknownEntityError(f"unknown node {node_id!r}") from None

    def _effective(self, node: NodeSpec) -> NodeSpec:
        """The node spec with any brownout derating applied."""
        fraction = self._brownout.get(node.node_id)
        if fraction is None:
            return node
        return dataclasses.replace(
            node, mhz_per_processor=node.mhz_per_processor * fraction
        )

    @property
    def node_ids(self) -> list[str]:
        """All node ids, in registration order."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def fail_node(self, node_id: str) -> None:
        """Mark ``node_id`` as failed; its capacity disappears."""
        self.node(node_id)  # validate
        self._failed.add(node_id)

    def restore_node(self, node_id: str) -> None:
        """Return a previously failed node to service."""
        self.node(node_id)  # validate
        self._failed.discard(node_id)

    def is_active(self, node_id: str) -> bool:
        """Whether the node is registered and not failed."""
        return node_id in self._nodes and node_id not in self._failed

    @property
    def failed_node_ids(self) -> set[str]:
        """Ids of currently failed nodes (copy)."""
        return set(self._failed)

    def active_nodes(self) -> list[NodeSpec]:
        """All healthy nodes (brownout-derated), in registration order."""
        return [
            self._effective(n)
            for nid, n in self._nodes.items()
            if nid not in self._failed
        ]

    # ------------------------------------------------------------------
    # Brownouts
    # ------------------------------------------------------------------
    def set_brownout(self, node_id: str, fraction: float) -> None:
        """Derate ``node_id`` to ``fraction`` of its nominal CPU speed."""
        if node_id not in self._nodes:
            raise UnknownEntityError(f"unknown node {node_id!r}")
        if not 0 < fraction <= 1:
            raise ConfigurationError("brownout fraction must be in (0, 1]")
        if fraction == 1.0:
            self._brownout.pop(node_id, None)
        else:
            self._brownout[node_id] = fraction

    def clear_brownout(self, node_id: str) -> None:
        """Restore ``node_id`` to its nominal CPU speed."""
        if node_id not in self._nodes:
            raise UnknownEntityError(f"unknown node {node_id!r}")
        self._brownout.pop(node_id, None)

    def brownout_fraction(self, node_id: str) -> float:
        """Current speed fraction of ``node_id`` (1.0 when not browned out)."""
        if node_id not in self._nodes:
            raise UnknownEntityError(f"unknown node {node_id!r}")
        return self._brownout.get(node_id, 1.0)

    @property
    def brownout_capacity_fraction(self) -> float:
        """Fraction of active *nominal* CPU currently shed by brownouts."""
        nominal = sum(
            n.cpu_capacity
            for nid, n in self._nodes.items()
            if nid not in self._failed
        )
        if nominal <= 0:
            return 0.0
        return 1.0 - self.total_cpu_capacity / nominal

    # ------------------------------------------------------------------
    # Aggregate capacity
    # ------------------------------------------------------------------
    @property
    def total_cpu_capacity(self) -> Mhz:
        """Sum of CPU power over *active* nodes, in MHz."""
        return sum(n.cpu_capacity for n in self.active_nodes())

    @property
    def total_memory(self) -> Megabytes:
        """Sum of memory over *active* nodes, in MB."""
        return sum(n.memory_mb for n in self.active_nodes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster({len(self._nodes)} nodes, {len(self._failed)} failed, "
            f"{self.total_cpu_capacity:.0f} MHz active)"
        )

"""Physical node model.

A node is a machine in the data center with a fixed number of processors,
a per-processor speed in MHz and a memory size in MB.  Matching the paper's
evaluation setup, CPU power is treated as a fluid resource of
``processors x mhz_per_processor`` MHz that the hypervisor can divide
arbitrarily among hosted virtual machines, while any *single* VM thread is
capped at one processor's speed (enforced by the workload models, not by
the node itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..types import Megabytes, Mhz


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Immutable hardware description of one node.

    Attributes
    ----------
    node_id:
        Unique identifier within a cluster.
    processors:
        Number of physical processors (>= 1).
    mhz_per_processor:
        Speed of each processor in MHz.
    memory_mb:
        Installed memory in MB.
    """

    node_id: str
    processors: int
    mhz_per_processor: Mhz
    memory_mb: Megabytes

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigurationError("node_id must be non-empty")
        if self.processors < 1:
            raise ConfigurationError(f"node {self.node_id}: processors must be >= 1")
        if self.mhz_per_processor <= 0:
            raise ConfigurationError(
                f"node {self.node_id}: mhz_per_processor must be positive"
            )
        if self.memory_mb <= 0:
            raise ConfigurationError(f"node {self.node_id}: memory_mb must be positive")

    @property
    def cpu_capacity(self) -> Mhz:
        """Total fluid CPU power of the node in MHz."""
        return self.processors * self.mhz_per_processor

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.node_id}: {self.processors}x{self.mhz_per_processor:.0f} MHz, "
            f"{self.memory_mb:.0f} MB"
        )

"""Placement-change actions and their costs.

The controller's decisions are enacted through a small vocabulary of
actions, mirroring the control mechanisms the paper leverages (start/stop
of application instances, job start, suspension, resumption, migration and
hypervisor share adjustment).  Each action type carries a cost model --
:class:`ActionCosts` -- charged by the experiment runner when the action is
applied: suspending loses the work done since the last checkpoint,
migrating pauses the VM for a transfer period, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..errors import ConfigurationError
from ..types import Mhz, Seconds


@dataclass(frozen=True, slots=True)
class StartVm:
    """Boot a PENDING VM on ``node_id`` with an initial CPU grant."""

    vm_id: str
    node_id: str
    cpu_mhz: Mhz


@dataclass(frozen=True, slots=True)
class StopVm:
    """Terminate a VM (web instance shut down, or job cancelled)."""

    vm_id: str


@dataclass(frozen=True, slots=True)
class SuspendVm:
    """Checkpoint a RUNNING VM to disk, releasing its CPU and memory."""

    vm_id: str


@dataclass(frozen=True, slots=True)
class ResumeVm:
    """Restore a SUSPENDED VM onto ``node_id`` (any node; the image moves)."""

    vm_id: str
    node_id: str
    cpu_mhz: Mhz


@dataclass(frozen=True, slots=True)
class MigrateVm:
    """Live-migrate a RUNNING VM from ``src_node_id`` to ``dst_node_id``."""

    vm_id: str
    src_node_id: str
    dst_node_id: str
    cpu_mhz: Mhz


@dataclass(frozen=True, slots=True)
class AdjustCpu:
    """Change the hypervisor CPU share of a RUNNING VM in place."""

    vm_id: str
    cpu_mhz: Mhz


#: Any placement-change action.
PlacementAction = Union[StartVm, StopVm, SuspendVm, ResumeVm, MigrateVm, AdjustCpu]

#: Actions that count against the controller's change budget.  Pure share
#: adjustments are free: the hypervisor applies them without disturbing the VM.
DISRUPTIVE_ACTIONS = (StartVm, StopVm, SuspendVm, ResumeVm, MigrateVm)


@dataclass(frozen=True, slots=True)
class ActionCosts:
    """Latency/overhead model for placement actions.

    All values are simulated seconds.

    Attributes
    ----------
    start_delay:
        Time between a start action and the VM doing useful work.
    suspend_checkpoint_loss:
        Work-time lost when suspending (progress since last checkpoint).
    resume_delay:
        Time to restore a suspended image before work continues.
    migrate_pause:
        Stop-and-copy pause during which a migrating VM makes no progress.
    """

    start_delay: Seconds = 10.0
    suspend_checkpoint_loss: Seconds = 30.0
    resume_delay: Seconds = 60.0
    migrate_pause: Seconds = 20.0

    def __post_init__(self) -> None:
        for name in ("start_delay", "suspend_checkpoint_loss", "resume_delay", "migrate_pause"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"ActionCosts.{name} must be non-negative")


@dataclass(slots=True)
class ActionLog:
    """Tally of actions applied over a run, for reporting and ablations."""

    starts: int = 0
    stops: int = 0
    suspensions: int = 0
    resumptions: int = 0
    migrations: int = 0
    adjustments: int = 0
    by_cycle: list[int] = field(default_factory=list)

    @property
    def disruptive_total(self) -> int:
        """All actions except pure CPU-share adjustments."""
        return (
            self.starts + self.stops + self.suspensions
            + self.resumptions + self.migrations
        )

    def count(self, actions: list[PlacementAction]) -> None:
        """Add one control cycle's action list to the tally."""
        disruptive = 0
        for action in actions:
            if isinstance(action, StartVm):
                self.starts += 1
            elif isinstance(action, StopVm):
                self.stops += 1
            elif isinstance(action, SuspendVm):
                self.suspensions += 1
            elif isinstance(action, ResumeVm):
                self.resumptions += 1
            elif isinstance(action, MigrateVm):
                self.migrations += 1
            elif isinstance(action, AdjustCpu):
                self.adjustments += 1
            if isinstance(action, DISRUPTIVE_ACTIONS):
                disruptive += 1
        self.by_cycle.append(disruptive)

"""Virtual-machine lifecycle model.

Every placeable entity -- a web-application instance or a long-running job
-- runs inside a virtual machine.  The VM is the unit the placement
controller manipulates: it can be started on a node, stopped, suspended to
disk (releasing both CPU and memory on its host, at the price of a resume
delay) and migrated between nodes.

The state machine::

        +---------+   start    +---------+
        | PENDING | ---------> | RUNNING | <--------+
        +---------+            +---------+          | resume
             |                  |   |   \\  migrate |
             | cancel   suspend |   |    +-------+  |
             v                  v   |stop        |  |
        +---------+       +-----------+          v  |
        | STOPPED | <---- | SUSPENDED | ----> (RUNNING on another node)
        +---------+ stop  +-----------+
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import LifecycleError
from ..types import Megabytes, Mhz, WorkloadKind


class VmState(enum.Enum):
    """Lifecycle states of a virtual machine."""

    PENDING = "pending"
    RUNNING = "running"
    SUSPENDED = "suspended"
    STOPPED = "stopped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class VirtualMachine:
    """A placeable VM hosting one workload entity.

    Parameters
    ----------
    vm_id:
        Unique identifier.
    kind:
        Which workload type it belongs to.
    owner_id:
        Identifier of the owning application or job.
    memory_mb:
        Memory footprint the VM occupies on its host while RUNNING.
    """

    __slots__ = ("vm_id", "kind", "owner_id", "memory_mb", "_state", "_node_id",
                 "_cpu_allocation", "migrations", "suspensions")

    def __init__(
        self,
        vm_id: str,
        kind: WorkloadKind,
        owner_id: str,
        memory_mb: Megabytes,
    ) -> None:
        if memory_mb <= 0:
            raise LifecycleError(f"vm {vm_id}: memory must be positive")
        self.vm_id = vm_id
        self.kind = kind
        self.owner_id = owner_id
        self.memory_mb = memory_mb
        self._state = VmState.PENDING
        self._node_id: Optional[str] = None
        self._cpu_allocation: Mhz = 0.0
        self.migrations = 0
        self.suspensions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> VmState:
        """Current lifecycle state."""
        return self._state

    @property
    def node_id(self) -> Optional[str]:
        """Host node id while RUNNING, else ``None``."""
        return self._node_id

    @property
    def cpu_allocation(self) -> Mhz:
        """CPU power currently granted by the hypervisor (0 unless RUNNING)."""
        return self._cpu_allocation

    @property
    def is_running(self) -> bool:
        """Whether the VM currently occupies a node."""
        return self._state is VmState.RUNNING

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def start(self, node_id: str, cpu_allocation: Mhz = 0.0) -> None:
        """PENDING/SUSPENDED -> RUNNING on ``node_id``."""
        if self._state not in (VmState.PENDING, VmState.SUSPENDED):
            raise LifecycleError(
                f"vm {self.vm_id}: cannot start from state {self._state}"
            )
        self._state = VmState.RUNNING
        self._node_id = node_id
        self.set_allocation(cpu_allocation)

    def suspend(self) -> None:
        """RUNNING -> SUSPENDED; releases the host's CPU and memory."""
        if self._state is not VmState.RUNNING:
            raise LifecycleError(
                f"vm {self.vm_id}: cannot suspend from state {self._state}"
            )
        self._state = VmState.SUSPENDED
        self._node_id = None
        self._cpu_allocation = 0.0
        self.suspensions += 1

    def migrate(self, node_id: str, cpu_allocation: Mhz = 0.0) -> None:
        """RUNNING on one node -> RUNNING on another node."""
        if self._state is not VmState.RUNNING:
            raise LifecycleError(
                f"vm {self.vm_id}: cannot migrate from state {self._state}"
            )
        if node_id == self._node_id:
            raise LifecycleError(f"vm {self.vm_id}: migration to its own host")
        self._node_id = node_id
        self.set_allocation(cpu_allocation)
        self.migrations += 1

    def stop(self) -> None:
        """Any live state -> STOPPED (terminal)."""
        if self._state is VmState.STOPPED:
            raise LifecycleError(f"vm {self.vm_id}: already stopped")
        self._state = VmState.STOPPED
        self._node_id = None
        self._cpu_allocation = 0.0

    def set_allocation(self, cpu_allocation: Mhz) -> None:
        """Adjust the hypervisor CPU grant (RUNNING only)."""
        if self._state is not VmState.RUNNING:
            raise LifecycleError(
                f"vm {self.vm_id}: cannot allocate CPU in state {self._state}"
            )
        if cpu_allocation < 0:
            raise LifecycleError(f"vm {self.vm_id}: negative allocation")
        self._cpu_allocation = float(cpu_allocation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f"@{self._node_id}" if self._node_id else ""
        return (
            f"VM({self.vm_id}, {self.kind.value}, {self._state.value}{where}, "
            f"{self._cpu_allocation:.0f} MHz)"
        )

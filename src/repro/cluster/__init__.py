"""Virtualized data-center substrate.

Physical nodes (:class:`NodeSpec`), the managed :class:`Cluster`, the VM
lifecycle (:class:`VirtualMachine`), placement matrices
(:class:`Placement`) with feasibility validation, placement-change actions
with costs (:class:`ActionCosts`), and topology builders including the
paper's 25-node evaluation cluster (:func:`paper_cluster`).
"""

from .actions import (
    DISRUPTIVE_ACTIONS,
    ActionCosts,
    ActionLog,
    AdjustCpu,
    MigrateVm,
    PlacementAction,
    ResumeVm,
    StartVm,
    StopVm,
    SuspendVm,
)
from .cluster import Cluster
from .node import NodeSpec
from .placement import Placement, PlacementEntry
from .topology import (
    PAPER_MHZ_PER_PROCESSOR,
    PAPER_NODE_COUNT,
    PAPER_NODE_MEMORY_MB,
    PAPER_PROCESSORS,
    NodeClass,
    cluster_from_classes,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
)
from .vm import VirtualMachine, VmState

__all__ = [
    "NodeSpec",
    "Cluster",
    "VirtualMachine",
    "VmState",
    "Placement",
    "PlacementEntry",
    "ActionCosts",
    "ActionLog",
    "PlacementAction",
    "StartVm",
    "StopVm",
    "SuspendVm",
    "ResumeVm",
    "MigrateVm",
    "AdjustCpu",
    "DISRUPTIVE_ACTIONS",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "NodeClass",
    "cluster_from_classes",
    "paper_cluster",
    "PAPER_NODE_COUNT",
    "PAPER_PROCESSORS",
    "PAPER_MHZ_PER_PROCESSOR",
    "PAPER_NODE_MEMORY_MB",
]

"""Experiment reporting helpers.

Formats run results as text tables for the benches, the examples and
EXPERIMENTS.md.  Everything returns strings; nothing prints directly, so
callers control where output goes.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from ..analysis.stats import MetricAggregate, job_outcome_stats
from .replication import ReplicatedResult
from .runner import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], indent: str = ""
) -> str:
    """Fixed-width text table (headers + rows of stringifiable cells)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = indent + "  ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if r == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def summarize_run(result: ExperimentResult, label: str = "") -> str:
    """One-paragraph run summary: utilities, allocations, job outcomes."""
    rec = result.recorder
    horizon = result.scenario.horizon
    outcome = job_outcome_stats(result.jobs, horizon)
    tx_u = rec.series("tx_utility").time_average(0.0, horizon)
    lr_u = rec.series("lr_utility").time_average(0.0, horizon)
    tx_a = rec.series("tx_allocation").time_average(0.0, horizon)
    lr_a = rec.series("lr_allocation").time_average(0.0, horizon)
    log = result.action_log
    name = label or result.scenario.name
    lines = [
        f"run {name!r}: {result.cycles} control cycles over {horizon:.0f} s",
        (
            f"  time-avg utility: tx={tx_u:.3f} lr={lr_u:.3f}; "
            f"time-avg allocation: tx={tx_a:.0f} MHz lr={lr_a:.0f} MHz"
        ),
        (
            f"  jobs: {outcome.completed}/{outcome.submitted} completed, "
            f"{outcome.on_time} on time; mean achieved utility "
            f"{outcome.mean_utility:.3f}; mean tardiness {outcome.mean_tardiness:.0f} s"
        ),
        (
            f"  actions: {log.starts} starts, {log.stops} stops, "
            f"{log.suspensions} suspends, {log.resumptions} resumes, "
            f"{log.migrations} migrations"
        ),
    ]
    return "\n".join(lines)


#: Metrics `repro report` and the replicated baseline comparison show by
#: default: the paper-facing subset of ``summary_metrics()`` (utilities,
#: job outcomes, churn), excluding wall-clock telemetry.
REPORT_METRICS = (
    "tx_utility",
    "lr_utility",
    "min_utility",
    "utility_gap",
    "jobs_completed",
    "on_time_fraction",
    "mean_tardiness",
    "disruptive_actions",
)

#: Opt-in metrics appended to the defaults only when at least one result
#: actually sampled them (finite aggregate), so runs without the
#: corresponding knob keep their report layout unchanged.
OPTIONAL_REPORT_METRICS = ("optimality_gap_mean",)


def _sampled_optional_metrics(
    per_result_metrics: Sequence[Mapping[str, MetricAggregate]],
) -> list[str]:
    """The optional metrics with at least one finite sample across results."""
    return [
        key
        for key in OPTIONAL_REPORT_METRICS
        if any(
            key in metrics and metrics[key].n > 0
            for metrics in per_result_metrics
        )
    ]


def format_aggregate(agg: MetricAggregate) -> str:
    """``mean ± ci95-half-width`` cell text (point estimate when n=1)."""
    if agg.n == 0 or math.isnan(agg.mean):
        return "n/a"
    if agg.n == 1:
        return f"{agg.mean:.4g}"
    return f"{agg.mean:.4g} ± {agg.ci95_halfwidth:.2g}"


def replication_summary(result: ReplicatedResult, label: str = "") -> str:
    """One-paragraph summary of a replicated run (CLI output)."""
    name = label or result.scenario_name
    seeds = ", ".join(str(s) for s in result.seeds)
    metrics = result.metrics()
    lines = [
        (
            f"replicated {name!r} under policy {result.policy!r}: "
            f"n={result.replications} seeds [{seeds}]"
        ),
        "  per-metric mean ± 95% CI half-width:",
    ]
    shown = (*REPORT_METRICS, *_sampled_optional_metrics([metrics]))
    for key in shown:
        if key in metrics:
            lines.append(f"    {key:<20} {format_aggregate(metrics[key])}")
    return "\n".join(lines)


def replication_table(
    results: Sequence[ReplicatedResult],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Policy-comparison table over replicated results.

    One row per result (labeled ``policy`` and, when the inputs span
    several scenarios, ``scenario/policy``), one column per metric, cells
    ``mean ± 95% CI half-width`` -- the baseline-comparison layout the
    ``repro report`` subcommand renders from saved result files.
    """
    if not results:
        return "(no results)"
    if metrics is None:
        available = set()
        per_result = [result.metrics() for result in results]
        for aggregates in per_result:
            available |= set(aggregates)
        metrics = [m for m in REPORT_METRICS if m in available]
        metrics += _sampled_optional_metrics(per_result)
    scenarios = {result.scenario_name for result in results}
    headers = ["policy", "n", *metrics]
    rows = []
    for result in results:
        label = (
            result.policy
            if len(scenarios) == 1
            else f"{result.scenario_name}/{result.policy}"
        )
        aggregates = result.metrics()
        cells = []
        for m in metrics:
            if m not in aggregates:
                cells.append("n/a")
                continue
            agg = aggregates[m]
            cell = format_aggregate(agg)
            # NaN samples are dropped before aggregation, so a metric's
            # effective n can fall below the seed count; say so rather
            # than let the row's n column overstate the sample size.
            if 0 < agg.n < result.replications:
                cell += f" [n={agg.n}]"
            cells.append(cell)
        rows.append([label, str(result.replications), *cells])
    return format_table(headers, rows)


def comparison_table(results: Mapping[str, ExperimentResult]) -> str:
    """Side-by-side policy comparison (used by the BASE bench)."""
    headers = [
        "policy",
        "tx utility",
        "lr utility",
        "min utility",
        "jobs done",
        "on-time",
        "mean tardiness (s)",
        "disruptive actions",
    ]
    rows = []
    for name, result in results.items():
        rec = result.recorder
        horizon = result.scenario.horizon
        outcome = job_outcome_stats(result.jobs, horizon)
        tx_u = rec.series("tx_utility").time_average(0.0, horizon)
        lr_u = rec.series("lr_utility").time_average(0.0, horizon)
        rows.append(
            [
                name,
                f"{tx_u:.3f}",
                f"{lr_u:.3f}",
                f"{min(tx_u, lr_u):.3f}",
                f"{outcome.completed}/{outcome.submitted}",
                (
                    f"{outcome.on_time_fraction:.0%}"
                    if outcome.completed
                    else "n/a"
                ),
                f"{outcome.mean_tardiness:.0f}" if outcome.completed else "n/a",
                str(result.action_log.disruptive_total),
            ]
        )
    return format_table(headers, rows)

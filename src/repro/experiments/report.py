"""Experiment reporting helpers.

Formats run results as text tables for the benches, the examples and
EXPERIMENTS.md.  Everything returns strings; nothing prints directly, so
callers control where output goes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..analysis.stats import job_outcome_stats
from .runner import ExperimentResult


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], indent: str = ""
) -> str:
    """Fixed-width text table (headers + rows of stringifiable cells)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = indent + "  ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if r == 0:
            lines.append(indent + "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def summarize_run(result: ExperimentResult, label: str = "") -> str:
    """One-paragraph run summary: utilities, allocations, job outcomes."""
    rec = result.recorder
    horizon = result.scenario.horizon
    outcome = job_outcome_stats(result.jobs, horizon)
    tx_u = rec.series("tx_utility").time_average(0.0, horizon)
    lr_u = rec.series("lr_utility").time_average(0.0, horizon)
    tx_a = rec.series("tx_allocation").time_average(0.0, horizon)
    lr_a = rec.series("lr_allocation").time_average(0.0, horizon)
    log = result.action_log
    name = label or result.scenario.name
    lines = [
        f"run {name!r}: {result.cycles} control cycles over {horizon:.0f} s",
        (
            f"  time-avg utility: tx={tx_u:.3f} lr={lr_u:.3f}; "
            f"time-avg allocation: tx={tx_a:.0f} MHz lr={lr_a:.0f} MHz"
        ),
        (
            f"  jobs: {outcome.completed}/{outcome.submitted} completed, "
            f"{outcome.on_time} on time; mean achieved utility "
            f"{outcome.mean_utility:.3f}; mean tardiness {outcome.mean_tardiness:.0f} s"
        ),
        (
            f"  actions: {log.starts} starts, {log.stops} stops, "
            f"{log.suspensions} suspends, {log.resumptions} resumes, "
            f"{log.migrations} migrations"
        ),
    ]
    return "\n".join(lines)


def comparison_table(results: Mapping[str, ExperimentResult]) -> str:
    """Side-by-side policy comparison (used by the BASE bench)."""
    headers = [
        "policy",
        "tx utility",
        "lr utility",
        "min utility",
        "jobs done",
        "on-time",
        "mean tardiness (s)",
        "disruptive actions",
    ]
    rows = []
    for name, result in results.items():
        rec = result.recorder
        horizon = result.scenario.horizon
        outcome = job_outcome_stats(result.jobs, horizon)
        tx_u = rec.series("tx_utility").time_average(0.0, horizon)
        lr_u = rec.series("lr_utility").time_average(0.0, horizon)
        rows.append(
            [
                name,
                f"{tx_u:.3f}",
                f"{lr_u:.3f}",
                f"{min(tx_u, lr_u):.3f}",
                f"{outcome.completed}/{outcome.submitted}",
                (
                    f"{outcome.on_time_fraction:.0%}"
                    if outcome.completed
                    else "n/a"
                ),
                f"{outcome.mean_tardiness:.0f}" if outcome.completed else "n/a",
                str(result.action_log.disruptive_total),
            ]
        )
    return format_table(headers, rows)

"""Experiment scenarios.

A :class:`Scenario` is a fully materialized experiment description:
cluster topology, transactional applications with their intensity
profiles, the job-submission trace, controller configuration, action
costs, measurement noise, horizon and seed.  Builders construct the
paper's evaluation scenario (:func:`paper_scenario`) and scaled-down
variants for tests and ablations.

Paper parameters reproduced by :func:`paper_scenario`:

* 25 nodes x 4 processors (3000 MHz each -> 300 GHz cluster), memory
  sized so only three jobs fit per node;
* 800 identical jobs, each capped at one processor, submitted with
  exponential inter-arrival times of mean 260 s; the submission rate is
  halved near the end of the run;
* a constant transactional workload (closed session population) whose
  max-utility demand is about 70% of cluster capacity;
* placement recomputed every 600 s; horizon 70 000 s (the span of the
  paper's Figures 1-2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..cluster.actions import ActionCosts
from ..cluster.cluster import Cluster
from ..cluster.topology import (
    NodeClass,
    cluster_from_classes,
    homogeneous_cluster,
    zone_map_from_classes,
)
from ..config import ControllerConfig, NoiseConfig
from ..errors import ConfigurationError
from ..netmodel.topology import ZoneTopology
from ..sim.rng import RngRegistry
from ..types import Seconds
from ..workloads.jobs import JobSpec
from ..workloads.profiles import ConstantProfile, IntensityProfile, NoisyProfile
from ..workloads.tracegen import JobTemplate, paper_job_trace
from ..workloads.transactional import TransactionalAppSpec


@dataclass(frozen=True)
class NodeFailure:
    """A scheduled node outage (failure injection experiments)."""

    at: Seconds
    node_id: str
    restore_at: Optional[Seconds] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("failure time must be non-negative")
        if self.restore_at is not None and self.restore_at <= self.at:
            raise ConfigurationError("restore_at must come after the failure")


@dataclass(frozen=True)
class NodeBrownout:
    """A scheduled capacity brownout: the node keeps running but serves
    only ``fraction`` of its nominal CPU speed until ``restore_at``."""

    at: Seconds
    node_id: str
    fraction: float
    restore_at: Optional[Seconds] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("brownout time must be non-negative")
        if not 0 < self.fraction < 1:
            raise ConfigurationError("brownout fraction must be in (0, 1)")
        if self.restore_at is not None and self.restore_at <= self.at:
            raise ConfigurationError("restore_at must come after the brownout")


@dataclass(frozen=True)
class AppWorkload:
    """One managed transactional application plus its load profile."""

    spec: TransactionalAppSpec
    profile: IntensityProfile


@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible experiment description."""

    name: str
    num_nodes: int
    node_processors: int
    node_mhz: float
    node_memory_mb: float
    apps: tuple[AppWorkload, ...]
    job_specs: tuple[JobSpec, ...]
    controller: ControllerConfig
    costs: ActionCosts
    noise: NoiseConfig
    horizon: Seconds
    seed: int
    failures: tuple[NodeFailure, ...] = field(default_factory=tuple)
    #: Optional heterogeneous topology: when non-empty the cluster is
    #: built from these classes instead of ``num_nodes`` identical nodes
    #: (the ``node_*`` fields then describe the first class, for
    #: homogeneous-only consumers such as the paper-shape validator).
    node_classes: tuple[NodeClass, ...] = field(default_factory=tuple)
    #: Scheduled capacity brownouts (typically compiled from a
    #: :class:`repro.faults.FaultPlanSpec` by ``ScenarioSpec.materialize``).
    brownouts: tuple[NodeBrownout, ...] = field(default_factory=tuple)
    #: Optional network model (the spec's ``[network]`` block): zone RTTs
    #: and user populations.  ``None`` means the scenario is latency-blind
    #: and behaves exactly as before the network subsystem existed.
    network: Optional[ZoneTopology] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.node_classes:
            total = sum(cls.count for cls in self.node_classes)
            if total != self.num_nodes:
                raise ConfigurationError(
                    f"node_classes count {total} != num_nodes {self.num_nodes}"
                )
        if self.network is not None:
            if not self.node_classes:
                raise ConfigurationError(
                    "a network topology requires a cluster built from node "
                    "classes (zones)"
                )
            for cls in self.node_classes:
                zone = cls.zone or cls.name
                if zone not in self.network.zones:
                    raise ConfigurationError(
                        f"node class {cls.name!r} is in zone {zone!r}, which "
                        f"the network topology does not declare "
                        f"(declared: {', '.join(self.network.zones)})"
                    )

    def build_cluster(self) -> Cluster:
        """Materialize the cluster topology."""
        if self.node_classes:
            return cluster_from_classes(self.node_classes)
        return homogeneous_cluster(
            self.num_nodes,
            processors=self.node_processors,
            mhz_per_processor=self.node_mhz,
            memory_mb=self.node_memory_mb,
        )

    @property
    def cluster_capacity(self) -> float:
        """Aggregate CPU capacity (MHz), correct for both topology forms.

        Consumers must use this instead of multiplying the ``node_*``
        fields, which describe only the first class of a heterogeneous
        cluster.
        """
        if self.node_classes:
            return sum(cls.cpu_capacity for cls in self.node_classes)
        return self.num_nodes * self.node_processors * self.node_mhz

    def node_zone_map(self) -> dict[str, str]:
        """Node-id -> zone map of the topology (empty when homogeneous)."""
        if not self.node_classes:
            return {}
        return zone_map_from_classes(self.node_classes)

    def with_controller(self, controller: ControllerConfig) -> "Scenario":
        """Copy of the scenario with a different controller configuration."""
        return replace(self, controller=controller)

    def with_failures(self, failures: Sequence[NodeFailure]) -> "Scenario":
        """Copy of the scenario with scheduled node outages."""
        return replace(self, failures=tuple(failures))

    def with_brownouts(self, brownouts: Sequence[NodeBrownout]) -> "Scenario":
        """Copy of the scenario with scheduled capacity brownouts."""
        return replace(self, brownouts=tuple(brownouts))


#: Transactional parameters tuned so the app's utility plateau is 0.75
#: (matching Figure 1's uncontended level) and its max-utility demand is
#: ~210 GHz on the 300 GHz cluster (matching Figure 2's demand band).
PAPER_SESSIONS = 210.0
PAPER_THINK_TIME = 0.2
PAPER_SERVICE_CYCLES = 300.0
PAPER_RT_GOAL = 0.4


def paper_tx_app(
    sessions: float = PAPER_SESSIONS,
    noise_rel_std: float = 0.04,
    seed: int = 104729,
    max_instances: int = 25,
) -> AppWorkload:
    """The paper's constant transactional workload.

    A closed population of ``sessions`` clients with small think time; the
    session count is modulated by low-amplitude lognormal noise per
    control-cycle window, producing the wiggle visible in the paper's
    transactional demand curve.
    """
    spec = TransactionalAppSpec(
        app_id="webapp",
        rt_goal=PAPER_RT_GOAL,
        mean_service_cycles=PAPER_SERVICE_CYCLES,
        request_cap_mhz=3000.0,
        instance_memory_mb=400.0,
        min_instances=1,
        max_instances=max_instances,
        model_kind="closed",
        think_time=PAPER_THINK_TIME,
    )
    base: IntensityProfile = ConstantProfile(sessions)
    profile: IntensityProfile = (
        NoisyProfile(base, rel_std=noise_rel_std, interval=600.0, seed=seed)
        if noise_rel_std > 0
        else base
    )
    return AppWorkload(spec=spec, profile=profile)


def paper_scenario(
    seed: int = 42,
    num_nodes: int = 25,
    horizon: Seconds = 70_000.0,
    job_count: int = 800,
    mean_interarrival: Seconds = 260.0,
    rate_drop_time: Seconds = 60_000.0,
    controller: Optional[ControllerConfig] = None,
    tx_noise_rel_std: float = 0.04,
    measurement_noise: Optional[NoiseConfig] = None,
) -> Scenario:
    """The paper's evaluation scenario (Figures 1 and 2)."""
    rngs = RngRegistry(seed)
    jobs = paper_job_trace(
        rngs.stream("job-arrivals"),
        count=job_count,
        mean_interarrival=mean_interarrival,
        rate_drop_time=rate_drop_time,
    )
    return Scenario(
        name="paper-fig1-fig2",
        num_nodes=num_nodes,
        node_processors=4,
        node_mhz=3000.0,
        node_memory_mb=4000.0,
        apps=(paper_tx_app(noise_rel_std=tx_noise_rel_std, max_instances=num_nodes),),
        job_specs=tuple(jobs),
        controller=controller or ControllerConfig(),
        costs=ActionCosts(),
        noise=measurement_noise or NoiseConfig(),
        horizon=horizon,
        seed=seed,
    )


def scaled_paper_scenario(
    scale: float = 0.2,
    seed: int = 42,
    controller: Optional[ControllerConfig] = None,
) -> Scenario:
    """A proportionally scaled paper scenario for tests and ablations.

    Nodes, session population and job arrival rate shrink together so the
    contention dynamics (ramp, crossover, equalization, recovery) are
    preserved at a fraction of the simulation cost.  The horizon is kept
    at the paper's 70 000 s because job durations do not scale.
    """
    if not 0 < scale <= 1:
        raise ConfigurationError("scale must be in (0, 1]")
    num_nodes = max(int(round(25 * scale)), 2)
    node_ratio = num_nodes / 25.0
    rngs = RngRegistry(seed)
    jobs = paper_job_trace(
        rngs.stream("job-arrivals"),
        count=max(int(round(800 * node_ratio)), 10),
        mean_interarrival=260.0 / node_ratio,
        rate_drop_time=60_000.0,
    )
    return Scenario(
        name=f"paper-scaled-{scale:g}",
        num_nodes=num_nodes,
        node_processors=4,
        node_mhz=3000.0,
        node_memory_mb=4000.0,
        apps=(
            paper_tx_app(
                sessions=PAPER_SESSIONS * node_ratio, max_instances=num_nodes
            ),
        ),
        job_specs=tuple(jobs),
        controller=controller or ControllerConfig(),
        costs=ActionCosts(),
        noise=NoiseConfig(),
        horizon=70_000.0,
        seed=seed,
    )


def smoke_scenario(seed: int = 7) -> Scenario:
    """A minutes-long toy scenario used by fast integration tests."""
    rngs = RngRegistry(seed)
    template = JobTemplate(
        total_work=1_200.0 * 3000.0,  # 20 minutes at one processor
        speed_cap_mhz=3000.0,
        memory_mb=1200.0,
        goal_factor=4.0,
    )
    jobs = paper_job_trace(
        rngs.stream("job-arrivals"),
        count=20,
        mean_interarrival=300.0,
        rate_drop_time=4_000.0,
        template=template,
        initial_jobs=2,
    )
    return Scenario(
        name="smoke",
        num_nodes=4,
        node_processors=4,
        node_mhz=3000.0,
        node_memory_mb=4000.0,
        apps=(paper_tx_app(sessions=40.0, noise_rel_std=0.0, max_instances=4),),
        job_specs=tuple(jobs),
        controller=ControllerConfig(control_cycle=300.0),
        costs=ActionCosts(),
        noise=NoiseConfig(0.0, 0.0, 0.0),
        horizon=6_000.0,
        seed=seed,
    )

"""Multi-seed replication of experiments.

The paper's evaluation claims (utility equalization, service
differentiation, overload behavior) are statements about *distributions*
of outcomes, so a single seeded run is weak evidence.  This module runs
the same :class:`~repro.api.spec.ScenarioSpec` under one policy across
many seeds -- fanned out over the :func:`~repro.experiments.sweeps.run_sweep`
process pool -- and aggregates every :meth:`ExperimentResult.summary_metrics`
key into a :class:`~repro.analysis.stats.MetricAggregate` (n, mean,
sample std, 95% Student-t confidence interval, min, max).

:class:`ReplicatedResult` serializes under the stable
``repro.result-replicated/v1`` schema::

    {
      "schema": "repro.result-replicated/v1",
      "scenario": {"name", "base_seed", "horizon", "num_nodes"},
      "policy": "<registry name>",
      "seeds": [7, 8, 9],
      "per_seed": [{"seed": 7, "summary": {<summary_metrics()>}}, ...],
      "aggregates": {"<metric>": {"n", "mean", "std",
                                  "ci95_lo", "ci95_hi", "min", "max"}, ...}
    }

Non-finite numbers serialize as JSON ``null`` (the same strict-JSON
convention as ``repro.result/v1``) and load back as NaN.  ``aggregates``
is recomputed from ``per_seed`` on load, so the two sections cannot
drift.  ``repro report`` renders saved payloads of either result schema
without re-running anything.
"""

from __future__ import annotations

import csv
import functools
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from ..analysis.stats import MetricAggregate, aggregate_metrics
from ..errors import ConfigurationError
from .runner import RESULT_SCHEMA as _SINGLE_RESULT_SCHEMA
from .runner import _null_non_finite
from .scenario import Scenario
from .sweeps import default_metrics, run_sweep

#: Version tag of the serialized replicated-result layout (see module
#: docstring).
REPLICATED_RESULT_SCHEMA = "repro.result-replicated/v1"


def _seed_variant_scenario(spec_data: Mapping[str, object], seed: object) -> Scenario:
    """Module-level (picklable) factory: the spec re-seeded with ``seed``."""
    from ..api.spec import ScenarioSpec

    spec = ScenarioSpec.from_dict(spec_data)
    return spec.with_overrides({"seed": int(seed)}).materialize()  # type: ignore[call-overload]


def resolve_seeds(
    base_seed: int,
    *,
    seeds: Optional[Sequence[int]] = None,
    replications: Optional[int] = None,
) -> tuple[int, ...]:
    """The seed list a replication will run.

    Either an explicit ``seeds`` sequence (must be non-empty, integer and
    free of duplicates -- running the same seed twice adds no statistical
    information) or ``replications`` consecutive seeds starting at
    ``base_seed``.
    """
    if seeds is not None and replications is not None:
        raise ConfigurationError("give either seeds or replications, not both")
    if seeds is not None:
        out = tuple(int(s) for s in seeds)
        if not out:
            raise ConfigurationError("seeds must be non-empty")
        if len(set(out)) != len(out):
            raise ConfigurationError("seeds must be distinct")
        return out
    if replications is None or replications < 1:
        raise ConfigurationError("replications must be a positive integer")
    return tuple(range(base_seed, base_seed + replications))


@dataclass(frozen=True)
class ReplicatedResult:
    """Per-seed summaries plus cross-seed aggregates of one experiment.

    ``per_seed`` holds one :meth:`ExperimentResult.summary_metrics`
    mapping per entry of ``seeds``, in the same order.  Aggregates are
    derived (never stored authoritatively): :meth:`metrics` recomputes
    them from ``per_seed``, and since
    :meth:`~repro.analysis.stats.MetricAggregate.of` sorts its samples,
    they are invariant under any permutation of the seed order.
    """

    scenario_name: str
    base_seed: int
    horizon: float
    num_nodes: int
    policy: str
    seeds: tuple[int, ...]
    per_seed: tuple[Mapping[str, float], ...]
    _aggregates: dict[str, MetricAggregate] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.seeds) != len(self.per_seed):
            raise ConfigurationError(
                f"seeds ({len(self.seeds)}) and per-seed summaries "
                f"({len(self.per_seed)}) must align"
            )
        if not self.seeds:
            raise ConfigurationError("a replicated result needs >= 1 seed")

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def replications(self) -> int:
        """Number of replications (seeds) the result covers."""
        return len(self.seeds)

    def metrics(self) -> dict[str, MetricAggregate]:
        """Per-metric aggregates across seeds (cached after first call)."""
        if not self._aggregates:
            self._aggregates.update(aggregate_metrics(list(self.per_seed)))
        return dict(self._aggregates)

    def metric(self, name: str) -> MetricAggregate:
        """One metric's aggregate; raises naming the metric when unknown."""
        try:
            return self.metrics()[name]
        except KeyError:
            known = ", ".join(sorted(self.metrics())) or "<none>"
            raise ConfigurationError(
                f"unknown metric {name!r} (available: {known})"
            ) from None

    # ------------------------------------------------------------------
    # Serialization (repro.result-replicated/v1)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Serializable form in the ``repro.result-replicated/v1`` schema."""
        return {
            "schema": REPLICATED_RESULT_SCHEMA,
            "scenario": {
                "name": self.scenario_name,
                "base_seed": self.base_seed,
                "horizon": self.horizon,
                "num_nodes": self.num_nodes,
            },
            "policy": self.policy,
            "seeds": list(self.seeds),
            "per_seed": [
                {"seed": seed, "summary": dict(summary)}
                for seed, summary in zip(self.seeds, self.per_seed)
            ],
            "aggregates": {
                name: agg.to_dict() for name, agg in sorted(self.metrics().items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`to_dict` as strict (RFC 8259) JSON; non-finite -> null."""
        return json.dumps(
            _null_non_finite(self.to_dict()), indent=indent, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ReplicatedResult":
        """Rebuild from a ``repro.result-replicated/v1`` payload.

        ``aggregates`` in the payload are ignored and recomputed from
        ``per_seed``, so a hand-edited file cannot carry inconsistent
        statistics.
        """
        schema = data.get("schema")
        if schema != REPLICATED_RESULT_SCHEMA:
            raise ConfigurationError(
                f"unsupported result schema {schema!r} "
                f"(expected {REPLICATED_RESULT_SCHEMA!r})"
            )
        scenario = data.get("scenario")
        if not isinstance(scenario, Mapping):
            raise ConfigurationError("result payload is missing 'scenario'")
        raw = data.get("per_seed")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ConfigurationError("result payload is missing 'per_seed'")
        seeds: list[int] = []
        per_seed: list[dict[str, float]] = []
        for entry in raw:
            if not isinstance(entry, Mapping) or "seed" not in entry:
                raise ConfigurationError("per_seed entries need a 'seed' field")
            seeds.append(int(entry["seed"]))  # type: ignore[call-overload]
            summary = entry.get("summary")
            if not isinstance(summary, Mapping):
                raise ConfigurationError("per_seed entries need a 'summary' table")
            per_seed.append({key: _as_sample(value) for key, value in summary.items()})
        return cls(
            scenario_name=str(scenario.get("name", "?")),
            base_seed=int(scenario.get("base_seed", seeds[0] if seeds else 0)),  # type: ignore[call-overload]
            horizon=float(scenario.get("horizon", math.nan)),  # type: ignore[arg-type]
            num_nodes=int(scenario.get("num_nodes", 0)),  # type: ignore[call-overload]
            policy=str(data.get("policy", "?")),
            seeds=tuple(seeds),
            per_seed=tuple(per_seed),
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplicatedResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid result JSON: {exc}") from None
        if not isinstance(data, Mapping):
            raise ConfigurationError("result payload must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | Path) -> "ReplicatedResult":
        """Load a saved ``repro.result-replicated/v1`` JSON file."""
        return cls.from_json(_read_result_file(path))

    def save(self, path: str | Path) -> Path:
        """Write the payload as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    # CSV export
    # ------------------------------------------------------------------
    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write ``aggregates.csv`` (metric,n,mean,std,ci95_lo,ci95_hi,
        min,max) and ``per_seed.csv`` (seed,metric,value) under
        ``directory``; returns the written paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        agg_path = directory / "aggregates.csv"
        with agg_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["metric", "n", "mean", "std", "ci95_lo", "ci95_hi", "min", "max"]
            )
            for name, agg in sorted(self.metrics().items()):
                writer.writerow(
                    [
                        name,
                        agg.n,
                        repr(agg.mean),
                        repr(agg.std),
                        repr(agg.ci95_lo),
                        repr(agg.ci95_hi),
                        repr(agg.minimum),
                        repr(agg.maximum),
                    ]
                )
        seed_path = directory / "per_seed.csv"
        with seed_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["seed", "metric", "value"])
            for seed, summary in zip(self.seeds, self.per_seed):
                for key in sorted(summary):
                    writer.writerow([seed, key, repr(float(summary[key]))])
        return [agg_path, seed_path]


def _as_sample(value: object) -> float:
    """JSON summary value -> float sample (null -> NaN)."""
    if value is None:
        return math.nan
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"summary values must be numbers or null, got {type(value).__name__}"
        )
    return float(value)


def _read_result_file(path: str | Path) -> str:
    try:
        return Path(path).read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read result file: {exc}") from None


def load_result(path: str | Path) -> ReplicatedResult:
    """Load *any* saved result file as a :class:`ReplicatedResult`.

    ``repro.result-replicated/v1`` payloads load directly; a plain
    ``repro.result/v1`` payload (one run) degenerates to a single-seed
    replication, so ``repro report`` can tabulate both kinds side by
    side.  Unknown schemas raise naming the supported tags.
    """
    try:
        data = json.loads(_read_result_file(path))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid result JSON in {path}: {exc}") from None
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{path}: result payload must be a JSON object")
    schema = data.get("schema")
    if schema == REPLICATED_RESULT_SCHEMA:
        return ReplicatedResult.from_dict(data)
    if schema == _SINGLE_RESULT_SCHEMA:
        scenario = data.get("scenario")
        if not isinstance(scenario, Mapping):
            raise ConfigurationError(f"{path}: result payload missing 'scenario'")
        summary = data.get("summary")
        if not isinstance(summary, Mapping):
            raise ConfigurationError(f"{path}: result payload missing 'summary'")
        seed = int(scenario.get("seed", 0))  # type: ignore[call-overload]
        return ReplicatedResult(
            scenario_name=str(scenario.get("name", "?")),
            base_seed=seed,
            horizon=float(scenario.get("horizon", math.nan)),  # type: ignore[arg-type]
            num_nodes=int(scenario.get("num_nodes", 0)),  # type: ignore[call-overload]
            policy=str(data.get("policy", "?")),
            seeds=(seed,),
            per_seed=({k: _as_sample(v) for k, v in summary.items()},),
        )
    raise ConfigurationError(
        f"{path}: unsupported result schema {schema!r} (supported: "
        f"{_SINGLE_RESULT_SCHEMA!r}, {REPLICATED_RESULT_SCHEMA!r})"
    )


def replicate_spec(
    spec,
    *,
    policy: str = "utility",
    seeds: Optional[Sequence[int]] = None,
    replications: Optional[int] = None,
    workers: Optional[int] = None,
) -> ReplicatedResult:
    """Run ``spec`` once per seed under ``policy`` and aggregate.

    Seed variants are produced with ``spec.with_overrides({"seed": s})``
    -- everything else in the scenario is held fixed -- and fan out over
    the :func:`run_sweep` process pool when ``workers`` > 1.  Only the
    per-seed summary-metric mappings travel back from the workers, so
    replication scales to wide seed grids.

    Scope of the seed: the scenario seed drives every stream of the
    scenario's :class:`~repro.sim.rng.RngRegistry` -- the job-arrival
    trace and the runner's measurement noise -- so those vary per
    replication.  A :class:`~repro.api.spec.NoisyProfileSpec`'s
    intensity noise carries its *own* seed as spec data and is therefore
    identical across replications (common random numbers: every policy
    and every seed faces the same demand trajectory, which sharpens
    policy comparisons but means the CIs describe variability
    *conditional on* that trajectory).  Vary it explicitly with e.g.
    ``spec.with_overrides({"apps.0.profile.seed": s})`` if demand-path
    variation is wanted.  A spec with no stochastic stream at all (job
    kind ``"none"``, zero noise) replicates to identical runs and
    honestly reports zero-width CIs.
    """
    # Late imports: the policy registry imports the runner (and the spec
    # layer imports this package), so binding them at module-import time
    # would be circular.
    from ..api.spec import ScenarioSpec
    from ..baselines.registry import get_policy

    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            "replicate_spec needs a ScenarioSpec (use Experiment.replicate "
            "or repro.api.resolve_spec for names/files)"
        )
    seed_grid = resolve_seeds(spec.seed, seeds=seeds, replications=replications)
    policy_factory = get_policy(policy)  # fail fast on unknown policy names
    sweep = run_sweep(
        name=f"{spec.name}:replicate",
        grid=list(seed_grid),
        scenario_factory=functools.partial(_seed_variant_scenario, spec.to_dict()),
        metric_extractor=default_metrics,
        policy_factory=policy_factory,
        workers=workers,
    )
    return ReplicatedResult(
        scenario_name=spec.name,
        base_seed=spec.seed,
        horizon=spec.horizon,
        num_nodes=spec.topology.total_nodes,
        policy=policy,
        seeds=seed_grid,
        per_seed=tuple(dict(point.metrics) for point in sweep.points),
    )

"""Parameter sweeps over scenarios.

Generic machinery for the ablation experiments: run a scenario factory
over a grid of parameter values, collect per-run summary metrics, and
tabulate them.  Used by the ABL-CYCLE and ABL-UTIL benches and by the
examples.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..errors import ConfigurationError, SimulationError
from .runner import ExperimentResult, PolicyFactory, run_scenario
from .scenario import Scenario

#: Builds a scenario from one sweep-parameter value.
ScenarioFactory = Callable[[object], Scenario]
#: Extracts named metrics from a finished run.
MetricExtractor = Callable[[ExperimentResult], Mapping[str, float]]


class SweepPointError(SimulationError):
    """A sweep grid point failed; the message names the parameter assignment.

    Raised in the worker (so it pickles back through the process pool as
    a plain single-argument exception) wrapping whatever the scenario
    factory, the run or the metric extractor raised.  Without it, a
    failure in an N-point parallel grid surfaces as a bare traceback
    with no hint of *which* assignment broke.
    """


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome."""

    parameter: object
    metrics: Mapping[str, float]


@dataclass(frozen=True)
class SweepResult:
    """All grid points of one sweep."""

    name: str
    points: tuple[SweepPoint, ...]

    def metric(self, key: str) -> list[float]:
        """One metric's values across the grid, in grid order."""
        return [float(p.metrics[key]) for p in self.points]

    def parameters(self) -> list[object]:
        """The grid values, in order."""
        return [p.parameter for p in self.points]


def default_metrics(result: ExperimentResult) -> Mapping[str, float]:
    """Standard sweep metrics: utilities, equalization, outcomes, churn.

    Delegates to :meth:`ExperimentResult.summary_metrics`, the one stable
    scalar summary shared by sweeps, the CLI and JSON/CSV export.
    """
    return result.summary_metrics()


def _run_point(
    args: tuple[
        str, ScenarioFactory, MetricExtractor, Optional[PolicyFactory], object
    ],
) -> SweepPoint:
    """One grid point, from factory call to extracted metrics.

    Module-level so worker processes can unpickle it; the whole run
    happens in the worker and only the (small) metrics mapping returns.
    Any failure is re-raised as :class:`SweepPointError` naming the
    sweep and the grid value that produced it.
    """
    name, scenario_factory, metric_extractor, policy_factory, value = args
    try:
        scenario = scenario_factory(value)
        result = run_scenario(scenario, policy_factory)
        return SweepPoint(parameter=value, metrics=dict(metric_extractor(result)))
    except Exception as exc:
        # `raise ... from exc` alone is not enough here: exceptions that
        # cross a ProcessPoolExecutor are re-pickled from (type, args)
        # and lose __cause__ -- and with it the worker traceback.  Embed
        # the formatted worker traceback in the message (it is part of
        # args, so it survives the round trip) and still chain the
        # original for the serial path.
        raise SweepPointError(
            f"sweep {name!r} failed at grid point {value!r}: "
            f"{type(exc).__name__}: {exc}\n"
            f"--- worker traceback ---\n{traceback.format_exc()}"
        ) from exc


def run_sweep(
    name: str,
    grid: Sequence[object],
    scenario_factory: ScenarioFactory,
    metric_extractor: MetricExtractor = default_metrics,
    policy_factory: Optional[PolicyFactory] = None,
    workers: Optional[int] = None,
) -> SweepResult:
    """Run ``scenario_factory(value)`` for every grid value and collect metrics.

    ``workers`` > 1 fans the grid points out over a process pool (each
    point is an independent simulation, so ablation grids scale to all
    cores).  Results are identical to the serial path: every run is
    seeded by its scenario (built deterministically from its grid value)
    and ``ProcessPoolExecutor.map`` preserves grid order.  The factories
    and extractor must then be picklable -- module-level functions or
    ``functools.partial`` over module-level functions, not closures.

    A raising grid point aborts the sweep with a :class:`SweepPointError`
    whose message names the failing parameter assignment.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError("workers must be a positive integer")
    tasks = [
        (name, scenario_factory, metric_extractor, policy_factory, value)
        for value in grid
    ]
    if workers is None or workers == 1 or len(tasks) <= 1:
        points = [_run_point(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            points = list(pool.map(_run_point, tasks))
    return SweepResult(name=name, points=tuple(points))


def sweep_table(sweep: SweepResult, parameter_label: str = "value") -> str:
    """Text table of a sweep (parameters as rows, metrics as columns)."""
    if not sweep.points:
        return f"(sweep {sweep.name!r}: empty)"
    metric_names = sorted(sweep.points[0].metrics)
    headers = [parameter_label, *metric_names]
    rows = []
    for point in sweep.points:
        rows.append(
            [
                str(point.parameter),
                *(f"{float(point.metrics[m]):.4g}" for m in metric_names),
            ]
        )
    from .report import format_table

    return format_table(headers, rows)

"""End-to-end experiment execution.

:class:`ExperimentRunner` wires a :class:`~repro.experiments.scenario.Scenario`
into the discrete-event simulator: it submits jobs, runs the control loop
on schedule, *enacts* the controller's actions with their virtualization
costs (start delays, suspend checkpoint losses, resume delays, migration
pauses), integrates fluid job progress, injects node failures, and records
the time series the paper's figures are built from.

The runner treats the decision maker as a black-box
:class:`PlacementPolicy`, so the paper's utility-driven controller and
every baseline run under identical conditions.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Protocol, Sequence

from ..analysis.stats import job_outcome_stats
from ..cluster.actions import (
    ActionLog,
    AdjustCpu,
    MigrateVm,
    PlacementAction,
    ResumeVm,
    StartVm,
    StopVm,
    SuspendVm,
)
from ..cluster.cluster import Cluster
from ..cluster.node import NodeSpec
from ..cluster.placement import Placement
from ..cluster.vm import VmState
import numpy as np

from ..core.controller import ControlDecision, UtilityDrivenController
from ..core.resilient import ResilientController
from ..core.sharded import ShardedController
from ..core.hypothetical import (
    longrunning_max_utility_demand,
    mean_hypothetical_utility,
)
from ..errors import SimulationError
from ..netmodel.context import NetworkContext
from ..perf.jobmodel import snapshot_jobs
from ..sim.engine import ORDER_COMPLETION, ORDER_CONTROL, ORDER_DEFAULT, Simulator
from ..sim.events import Event
from ..sim.recorder import Recorder
from ..sim.rng import RngRegistry
from ..types import Seconds
from ..utility.longrunning import JobUtility
from ..utility.transactional import TransactionalUtility
from ..workloads.jobs import Job, JobPhase
from ..workloads.transactional import TransactionalApp
from .scenario import Scenario


class PlacementPolicy(Protocol):
    """Decision-maker interface the runner drives.

    Implemented by :class:`~repro.core.controller.UtilityDrivenController`
    and by every baseline in :mod:`repro.baselines`.
    """

    def observe_app(
        self, app_id: str, *, load: float, service_cycles: Optional[float] = None
    ) -> None:
        """Receive one monitoring sample for a transactional app."""
        ...

    def decide(
        self,
        t: Seconds,
        *,
        nodes: Sequence[NodeSpec],
        jobs: Sequence[Job],
        current_placement: Placement,
        vm_states: Mapping[str, VmState],
        app_nodes: Mapping[str, frozenset[str]],
    ) -> ControlDecision:
        """Produce the cycle's placement decision."""
        ...


#: Factory building a policy for a scenario (lets experiments swap baselines).
PolicyFactory = Callable[[Scenario], PlacementPolicy]

#: Version tag of the serialized experiment-result layout (see
#: :meth:`ExperimentResult.to_dict`).
RESULT_SCHEMA = "repro.result/v1"


def default_policy_factory(scenario: Scenario) -> PlacementPolicy:
    """The paper's controller with the scenario's configuration.

    ``ControllerConfig.shards > 1`` selects the sharded hierarchical
    control plane (:class:`repro.core.sharded.ShardedController`); the
    monolithic controller otherwise.  A scenario with a network topology
    hands the controller a :class:`~repro.netmodel.context.NetworkContext`
    (the latency-aware objective only engages when
    ``controller.latency_weight > 0``).
    """
    specs = [workload.spec for workload in scenario.apps]
    network = (
        NetworkContext(scenario.network, scenario.node_zone_map())
        if scenario.network is not None
        else None
    )
    if scenario.controller.shards > 1:
        return ShardedController(
            specs,
            scenario.controller,
            network=network,
            node_zone=scenario.node_zone_map() or None,
        )
    return UtilityDrivenController(specs, scenario.controller, network=network)


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    scenario: Scenario
    recorder: Recorder
    jobs: list[Job]
    action_log: ActionLog
    final_placement: Placement
    cycles: int
    #: Registry name of the policy that produced the result, when known
    #: (set by :meth:`repro.api.experiment.Experiment.run`; ``None`` for
    #: hand-wired :class:`ExperimentRunner` invocations).
    policy: Optional[str] = None

    def job_outcomes(self) -> dict[str, float]:
        """Aggregate SLA outcomes over *completed* jobs.

        Counts every trace job as submitted (no horizon filter); the
        horizon-filtered view lives in :meth:`summary_metrics`.  Both
        delegate to :func:`repro.analysis.stats.job_outcome_stats` so
        the definitions cannot drift.
        """
        stats = job_outcome_stats(self.jobs)
        return {
            "completed": float(stats.completed),
            "submitted": float(stats.submitted),
            "mean_utility": stats.mean_utility,
            "on_time_fraction": stats.on_time_fraction,
            "mean_tardiness": stats.mean_tardiness,
        }

    # ------------------------------------------------------------------
    # Export (stable repro.result/v1 schema)
    # ------------------------------------------------------------------
    def summary_metrics(self) -> dict[str, float]:
        """Scalar run summary: time-averaged utilities, outcomes, churn.

        The metric set is stable (new keys may be appended, existing keys
        keep their meaning): ``tx_utility`` / ``lr_utility`` /
        ``min_utility`` / ``utility_gap`` are time averages over the full
        horizon; ``jobs_*``, ``on_time_fraction``, ``mean_tardiness`` and
        ``mean_job_utility`` aggregate completed-job outcomes
        (``jobs_submitted`` counts jobs that entered before the horizon,
        not trace jobs that never ran); ``disruptive_actions`` counts
        budget-relevant placement changes; ``cycles`` counts control
        cycles.

        Control-plane telemetry (policies running the incremental control
        plane only; NaN otherwise): ``warm_cycle_fraction`` is the
        share of cycles that ran warm, ``eq_cache_hit_rate`` the fraction
        of consumed-curve lookups the equalizer's memo served, and
        ``decide_ms_mean`` the mean decide() wall-time per cycle --
        the one *nondeterministic* metric in this set (wall-clock).

        Degradation telemetry: ``degraded_cycles`` counts cycles that
        fell back to the last-known-good placement,
        ``brownout_fraction`` is the time-averaged share of active
        nominal CPU shed by brownouts (0.0 without brownouts), and
        ``time_to_recover_mean`` averages, over failure episodes, the
        time from the failure instant until the minimum of the two
        workload utilities re-attains its pre-failure level (NaN when no
        failure occurred or none recovered within the horizon).

        Exact-oracle telemetry (runs with the ``exact_oracle``
        controller knob only; NaN otherwise): ``optimality_gap_mean``
        averages the background oracle's per-cycle relative gap between
        the production solver's satisfied demand and the exact optimum
        of the same instance.

        Network telemetry (scenarios declaring a zone topology only; NaN
        otherwise): ``rt_network_mean`` is the time-averaged mean
        expected network RTT (s) across apps, ``in_zone_fraction`` the
        time-averaged user mass served from its own zone, and
        ``latency_sla_attainment`` the time-averaged fraction of apps
        whose end-to-end (queueing + network) response time met the
        response-time goal.
        """
        rec = self.recorder
        horizon = self.scenario.horizon
        outcome = job_outcome_stats(self.jobs, horizon)
        tx_u = rec.series("tx_utility").time_average(0.0, horizon)
        lr_u = rec.series("lr_utility").time_average(0.0, horizon)
        telem_cycles = rec.counter("warm_cycles") + rec.counter("cold_cycles")
        eq_lookups = rec.counter("eq_evals_total") + rec.counter("eq_cache_hits_total")
        if rec.has_series("stage_ms:total"):
            decide_ms = float(rec.series("stage_ms:total").values.mean())
        else:
            decide_ms = math.nan
        return {
            "tx_utility": tx_u,
            "lr_utility": lr_u,
            "min_utility": min(tx_u, lr_u),
            "utility_gap": rec.series("utility_gap").time_average(0.0, horizon),
            "jobs_completed": float(outcome.completed),
            "jobs_submitted": float(outcome.submitted),
            "on_time_fraction": outcome.on_time_fraction,
            "mean_tardiness": outcome.mean_tardiness,
            "mean_job_utility": outcome.mean_utility,
            "disruptive_actions": float(self.action_log.disruptive_total),
            "cycles": float(self.cycles),
            "warm_cycle_fraction": (
                rec.counter("warm_cycles") / telem_cycles
                if telem_cycles
                else math.nan
            ),
            "eq_cache_hit_rate": (
                rec.counter("eq_cache_hits_total") / eq_lookups
                if eq_lookups
                else math.nan
            ),
            "decide_ms_mean": decide_ms,
            "degraded_cycles": float(rec.counter("degraded_cycles")),
            "brownout_fraction": (
                rec.series("brownout_fraction").time_average(0.0, horizon)
                if rec.has_series("brownout_fraction")
                else 0.0
            ),
            "time_to_recover_mean": _mean_time_to_recover(rec),
            "optimality_gap_mean": (
                float(rec.series("optimality_gap").values.mean())
                if rec.has_series("optimality_gap")
                else math.nan
            ),
            "rt_network_mean": (
                rec.series("rt_network_mean").time_average(0.0, horizon)
                if rec.has_series("rt_network_mean")
                else math.nan
            ),
            "in_zone_fraction": (
                rec.series("in_zone_fraction").time_average(0.0, horizon)
                if rec.has_series("in_zone_fraction")
                else math.nan
            ),
            "latency_sla_attainment": (
                rec.series("latency_sla_attainment").time_average(0.0, horizon)
                if rec.has_series("latency_sla_attainment")
                else math.nan
            ),
        }

    def to_dict(self) -> dict[str, object]:
        """Serializable result in the stable ``repro.result/v1`` schema::

            {
              "schema": "repro.result/v1",
              "scenario": {"name", "seed", "horizon", "num_nodes"},
              "policy": <registry name>,          # when known
              "cycles": <int>,
              "summary": {<summary_metrics()>},
              "recorder": {<Recorder.to_dict(), repro.recorder/v1>}
            }
        """
        data: dict[str, object] = {
            "schema": RESULT_SCHEMA,
            "scenario": {
                "name": self.scenario.name,
                "seed": self.scenario.seed,
                "horizon": self.scenario.horizon,
                "num_nodes": self.scenario.num_nodes,
            },
        }
        if self.policy is not None:
            data["policy"] = self.policy
        data.update(
            cycles=self.cycles,
            summary=self.summary_metrics(),
            recorder=self.recorder.to_dict(),
        )
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`to_dict` rendered as strict (RFC 8259) JSON.

        Non-finite metrics (e.g. ``mean_tardiness`` when no job
        completed) serialize as ``null`` so any JSON parser can read the
        export; :meth:`~repro.sim.recorder.Recorder.from_dict` maps
        ``null`` samples back to NaN.
        """
        return json.dumps(
            _null_non_finite(self.to_dict()),
            indent=indent,
            sort_keys=False,
            allow_nan=False,
        )

    def export_csv(self, directory: str | Path) -> list[Path]:
        """Write ``series.csv`` (long format: series,time,value) and
        ``summary.csv`` (metric,value) under ``directory``; returns the
        written paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        series_path = directory / "series.csv"
        with series_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["series", "time", "value"])
            for name in self.recorder.series_names():
                series = self.recorder.series(name)
                for t, v in zip(series.times, series.values):
                    writer.writerow([name, repr(float(t)), repr(float(v))])
        summary_path = directory / "summary.csv"
        with summary_path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["metric", "value"])
            for key, value in self.summary_metrics().items():
                writer.writerow([key, repr(float(value))])
        return [series_path, summary_path]


def _mean_time_to_recover(rec: Recorder) -> float:
    """Mean failure-to-SLA-re-attainment time over recovery episodes.

    For every failure instant ``f`` (the ``node_failures_series`` sample
    times -- simultaneous zone-outage failures collapse into one
    episode), the pre-failure SLA level is the last recorded
    ``min(tx_utility, lr_utility)`` at or before ``f``; the episode
    recovers at the first later cycle whose min-utility reaches that
    level again (small tolerance for float noise).  NaN when there were
    no failures, no pre-failure sample, or no episode recovered.
    """
    if not rec.has_series("node_failures_series") or not rec.has_series(
        "tx_utility"
    ):
        return math.nan
    tx = rec.series("tx_utility")
    lr = rec.series("lr_utility")
    times = tx.times
    if times.size == 0:
        return math.nan
    min_utility = np.minimum(tx.values, lr.resample(times))
    recovered: list[float] = []
    for f in rec.series("node_failures_series").times:
        before = np.flatnonzero(times <= f)
        if before.size == 0:
            continue
        baseline = min_utility[before[-1]]
        if not math.isfinite(baseline):
            continue
        hits = np.flatnonzero((times > f) & (min_utility >= baseline - 1e-9))
        if hits.size:
            recovered.append(float(times[hits[0]] - f))
    return float(np.mean(recovered)) if recovered else math.nan


def _null_non_finite(data: object) -> object:
    """Recursively replace non-finite floats with None (JSON null)."""
    if isinstance(data, float) and not math.isfinite(data):
        return None
    if isinstance(data, dict):
        return {k: _null_non_finite(v) for k, v in data.items()}
    if isinstance(data, (list, tuple)):
        return [_null_non_finite(v) for v in data]
    return data


class ExperimentRunner:
    """Runs one scenario under one placement policy."""

    def __init__(
        self,
        scenario: Scenario,
        policy_factory: Optional[PolicyFactory] = None,
    ) -> None:
        self.scenario = scenario
        policy = (policy_factory or default_policy_factory)(scenario)
        if scenario.controller.resilient and not isinstance(
            policy, ResilientController
        ):
            # Graceful degradation around *any* policy: feasibility-guard
            # every decision and fall back to the last-known-good
            # placement instead of aborting the run (see
            # repro.core.resilient).  The success path is untouched, so
            # fault-free runs stay bit-identical to unwrapped ones.
            policy = ResilientController(policy, scenario.controller)
        self._policy = policy
        self._rngs = RngRegistry(scenario.seed)
        self._sim = Simulator()
        self._cluster: Cluster = scenario.build_cluster()
        self._apps: dict[str, TransactionalApp] = {
            w.spec.app_id: TransactionalApp(w.spec, w.profile)
            for w in scenario.apps
        }
        self._tx_utilities = {
            w.spec.app_id: TransactionalUtility(w.spec.rt_goal) for w in scenario.apps
        }
        self._jobs: dict[str, Job] = {
            spec.job_id: Job(spec) for spec in scenario.job_specs
        }
        self._vm_to_job: dict[str, str] = {
            job.vm.vm_id: job_id for job_id, job in self._jobs.items()
        }
        self._placement = Placement()
        self._completion_events: dict[str, Event] = {}
        self._rate_events: dict[str, Event] = {}
        self._recorder = Recorder()
        self._action_log = ActionLog()
        self._cycles = 0
        self._measure_rng = self._rngs.stream("measurement-noise")
        # Network telemetry is recorded whenever the scenario declares a
        # topology -- independent of ``latency_weight``, so a latency-
        # blind baseline run still reports locality and attainment.
        self._network_ctx = (
            NetworkContext(scenario.network, scenario.node_zone_map())
            if scenario.network is not None
            else None
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the scenario to its horizon and return the result."""
        scenario = self.scenario
        # Control cycles: first at t=0 (jobs present at t=0 get placed then).
        self._sim.every(
            scenario.controller.control_cycle,
            self._control_cycle,
            start=0.0,
            order=ORDER_CONTROL,
            tag="control",
            until=scenario.horizon,
        )
        for failure in scenario.failures:
            self._sim.at(
                failure.at,
                lambda t, nid=failure.node_id: self._fail_node(t, nid),
                order=ORDER_DEFAULT,
                tag="node-failure",
            )
            if failure.restore_at is not None:
                self._sim.at(
                    failure.restore_at,
                    lambda t, nid=failure.node_id: self._cluster.restore_node(nid),
                    order=ORDER_DEFAULT,
                    tag="node-restore",
                )
        for brownout in scenario.brownouts:
            self._sim.at(
                brownout.at,
                lambda t, b=brownout: self._begin_brownout(t, b),
                order=ORDER_DEFAULT,
                tag="node-brownout",
            )
            if brownout.restore_at is not None:
                self._sim.at(
                    brownout.restore_at,
                    lambda t, nid=brownout.node_id: self._cluster.clear_brownout(nid),
                    order=ORDER_DEFAULT,
                    tag="node-brownout-end",
                )
        try:
            self._sim.run(until=scenario.horizon)
        finally:
            close = getattr(self._policy, "close", None)
            if close is not None:
                close()
        return ExperimentResult(
            scenario=scenario,
            recorder=self._recorder,
            jobs=list(self._jobs.values()),
            action_log=self._action_log,
            final_placement=self._placement,
            cycles=self._cycles,
        )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _control_cycle(self, t: Seconds) -> None:
        self._advance_running_jobs(t)
        self._feed_observations(t)
        decision = self._policy.decide(
            t,
            nodes=self._cluster.active_nodes(),
            jobs=list(self._jobs.values()),
            current_placement=self._placement,
            vm_states=self._vm_states(),
            app_nodes=self._app_nodes(),
        )
        decision.placement.validate(self._cluster)
        for action in decision.actions:
            self._apply(action, t)
        self._action_log.count(list(decision.actions))
        self._placement = decision.placement.copy()
        self._reschedule_completions(t)
        self._record(t, decision)
        self._cycles += 1

    def _advance_running_jobs(self, t: Seconds) -> None:
        for job in self._jobs.values():
            if job.phase is JobPhase.RUNNING:
                job.advance_to(t)

    def _feed_observations(self, t: Seconds) -> None:
        noise = self.scenario.noise
        for app_id in sorted(self._apps):
            app = self._apps[app_id]
            true_load = app.arrival_rate(t)
            observed_load = true_load * self._lognoise(noise.throughput_rel_std)
            observed_cycles = app.spec.mean_service_cycles * self._lognoise(
                noise.service_cycles_rel_std
            )
            self._policy.observe_app(
                app_id, load=observed_load, service_cycles=observed_cycles
            )

    # ------------------------------------------------------------------
    # Action enactment
    # ------------------------------------------------------------------
    def _apply(self, action: PlacementAction, t: Seconds) -> None:
        costs = self.scenario.costs
        if isinstance(action, StartVm):
            if action.vm_id in self._vm_to_job:
                job = self._job_of(action.vm_id)
                job.start(t, action.node_id, 0.0)
                self._schedule_rate(job, t + costs.start_delay, action.cpu_mhz)
            else:
                app_id, node_id = self._parse_instance(action.vm_id)
                self._apps[app_id].start_instance(t, node_id, action.cpu_mhz)
        elif isinstance(action, StopVm):
            if action.vm_id in self._vm_to_job:
                self._cancel_events(self._vm_to_job[action.vm_id])
                self._job_of(action.vm_id).cancel(t)
            else:
                app_id, node_id = self._parse_instance(action.vm_id)
                self._apps[app_id].stop_instance(node_id)
        elif isinstance(action, SuspendVm):
            job = self._job_of(action.vm_id)
            self._cancel_events(job.job_id)
            loss = costs.suspend_checkpoint_loss * job.rate
            job.suspend(t, work_lost=loss)
        elif isinstance(action, ResumeVm):
            job = self._job_of(action.vm_id)
            self._cancel_events(job.job_id)
            job.start(t, action.node_id, 0.0)
            self._schedule_rate(job, t + costs.resume_delay, action.cpu_mhz)
        elif isinstance(action, MigrateVm):
            job = self._job_of(action.vm_id)
            self._cancel_events(job.job_id)
            job.migrate(t, action.dst_node_id, 0.0)
            self._schedule_rate(job, t + costs.migrate_pause, action.cpu_mhz)
        elif isinstance(action, AdjustCpu):
            if action.vm_id in self._vm_to_job:
                job = self._job_of(action.vm_id)
                if job.job_id in self._rate_events:
                    # Still in a start/resume/migrate pause: retarget the
                    # pending rate instead of applying it early.
                    pending = self._rate_events.pop(job.job_id)
                    when = pending.time
                    pending.cancel()
                    self._schedule_rate(job, when, action.cpu_mhz)
                else:
                    job.set_rate(t, action.cpu_mhz)
            else:
                app_id, node_id = self._parse_instance(action.vm_id)
                self._apps[app_id].set_instance_allocation(node_id, action.cpu_mhz)
        else:  # pragma: no cover - exhaustive over the action union
            raise SimulationError(f"unknown action {action!r}")

    def _schedule_rate(self, job: Job, when: Seconds, rate: float) -> None:
        def fire(t2: Seconds, job_id: str = job.job_id) -> None:
            self._rate_events.pop(job_id, None)
            target = self._jobs[job_id]
            if target.phase is not JobPhase.RUNNING:
                return  # suspended/failed in the meantime
            target.set_rate(t2, rate)
            self._schedule_completion(target, t2)

        self._rate_events[job.job_id] = self._sim.at(
            when, fire, order=ORDER_DEFAULT, tag=f"rate:{job.job_id}"
        )

    def _cancel_events(self, job_id: str) -> None:
        for registry in (self._completion_events, self._rate_events):
            event = registry.pop(job_id, None)
            if event is not None and not event.fired:
                event.cancel()

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _reschedule_completions(self, t: Seconds) -> None:
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if job.phase is JobPhase.RUNNING and job.job_id not in self._rate_events:
                self._schedule_completion(job, t)

    def _schedule_completion(self, job: Job, t: Seconds) -> None:
        event = self._completion_events.pop(job.job_id, None)
        if event is not None and not event.fired:
            event.cancel()
        when = job.predicted_completion(t)
        if math.isinf(when):
            return
        self._completion_events[job.job_id] = self._sim.at(
            max(when, t),
            lambda t2, job_id=job.job_id: self._complete(job_id, t2),
            order=ORDER_COMPLETION,
            tag=f"complete:{job.job_id}",
        )

    def _complete(self, job_id: str, t: Seconds) -> None:
        job = self._jobs[job_id]
        self._completion_events.pop(job_id, None)
        job.complete(t)
        if job.vm.vm_id in self._placement:
            self._placement.remove(job.vm.vm_id)
        self._recorder.bump("jobs_completed")
        self._recorder.record(
            "job_achieved_utility", t, JobUtility().achieved(job)
        )

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def _fail_node(self, t: Seconds, node_id: str) -> None:
        self._cluster.fail_node(node_id)
        costs = self.scenario.costs
        for entry in list(self._placement.entries_on(node_id)):
            if entry.vm_id in self._vm_to_job:
                job = self._job_of(entry.vm_id)
                self._cancel_events(job.job_id)
                if job.phase is JobPhase.RUNNING:
                    # Crash-suspend: loses the checkpoint window's progress.
                    job.suspend(t, work_lost=costs.suspend_checkpoint_loss * job.rate)
            else:
                app_id, inst_node = self._parse_instance(entry.vm_id)
                self._apps[app_id].evacuate_node(inst_node)
            self._placement.remove(entry.vm_id)
        self._recorder.bump("node_failures")
        # Failure instants feed the time-to-recover summary metric;
        # recording the cumulative count dedupes a zone outage's
        # simultaneous failures into one recovery episode.
        self._recorder.record(
            "node_failures_series", t, self._recorder.counter("node_failures")
        )

    def _begin_brownout(self, t: Seconds, brownout) -> None:
        self._cluster.set_brownout(brownout.node_id, brownout.fraction)
        self._recorder.bump("node_brownouts")

    # ------------------------------------------------------------------
    # State views handed to the policy
    # ------------------------------------------------------------------
    def _vm_states(self) -> dict[str, VmState]:
        states: dict[str, VmState] = {}
        for job in self._jobs.values():
            states[job.vm.vm_id] = job.vm.state
        for app_id in sorted(self._apps):
            for node_id in self._apps[app_id].instance_nodes:
                states[f"tx:{app_id}@{node_id}"] = VmState.RUNNING
        return states

    def _app_nodes(self) -> dict[str, frozenset[str]]:
        return {
            app_id: frozenset(self._apps[app_id].instance_nodes)
            for app_id in sorted(self._apps)
        }

    # ------------------------------------------------------------------
    # Measurement and recording
    # ------------------------------------------------------------------
    def _lognoise(self, rel_std: float) -> float:
        if rel_std <= 0:
            return 1.0
        sigma = math.sqrt(math.log(1 + rel_std**2))
        return float(self._measure_rng.lognormal(mean=-sigma**2 / 2, sigma=sigma))

    def _record(self, t: Seconds, decision: ControlDecision) -> None:
        rec = self._recorder
        noise = self.scenario.noise
        solution = decision.solution

        population = snapshot_jobs(self._jobs.values(), t)
        satisfied_lr = solution.satisfied_lr_demand
        rec.record("lr_allocation", t, satisfied_lr)
        rec.record("lr_demand", t, longrunning_max_utility_demand(population))
        rec.record(
            "lr_utility", t, mean_hypothetical_utility(population, satisfied_lr)
        )
        rec.record("lr_utility_target", t, decision.hypothetical.mean_utility)

        tx_alloc_total = 0.0
        tx_demand_total = 0.0
        tx_utils: list[float] = []
        net_rts: list[float] = []
        in_zone_fracs: list[float] = []
        latency_attained = 0
        for app_id in sorted(self._apps):
            app = self._apps[app_id]
            true_load = app.arrival_rate(t)
            model = app.spec.build_perf_model(true_load)
            alloc = app.total_allocation
            rt = model.response_time(alloc) * self._lognoise(noise.response_time_rel_std)
            utility = self._tx_utilities[app_id].of_response_time(rt)
            tx_alloc_total += alloc
            tx_demand_total += model.max_utility_demand(
                self.scenario.controller.rt_tolerance
            )
            tx_utils.append(utility)
            rec.record(f"tx_rt:{app_id}", t, rt)
            rec.record(f"tx_utility:{app_id}", t, utility)
            rec.record(f"tx_allocation:{app_id}", t, alloc)
            if self._network_ctx is not None:
                # ``tx_rt`` stays queueing-only by contract; the network
                # leg is a *new* series, composed into ``rt_total``.
                net_rt = self._network_ctx.expected_rtt_s(app.instance_nodes)
                net_rts.append(net_rt)
                in_zone_fracs.append(
                    self._network_ctx.in_zone_fraction(app.instance_nodes)
                )
                if rt + net_rt <= app.spec.rt_goal:
                    latency_attained += 1
                rec.record(f"rt_network:{app_id}", t, net_rt)
                rec.record(f"rt_total:{app_id}", t, rt + net_rt)
        rec.record("tx_allocation", t, tx_alloc_total)
        rec.record("tx_demand", t, tx_demand_total)
        rec.record("tx_utility", t, min(tx_utils) if tx_utils else math.nan)
        if self._network_ctx is not None and net_rts:
            rec.record("rt_network_mean", t, sum(net_rts) / len(net_rts))
            rec.record(
                "in_zone_fraction", t, sum(in_zone_fracs) / len(in_zone_fracs)
            )
            rec.record(
                "latency_sla_attainment", t, latency_attained / len(net_rts)
            )

        diag = decision.diagnostics
        rec.record("tx_target", t, diag.tx_target)
        rec.record("lr_target", t, diag.lr_target)
        rec.record("tx_demand_est", t, diag.tx_demand)
        rec.record("lr_demand_est", t, diag.lr_demand)
        rec.record("tx_utility_predicted", t, diag.tx_utility_predicted)
        rec.record("utility_gap", t, abs(rec.series("tx_utility").value_at(t)
                                         - rec.series("lr_utility").value_at(t)))
        rec.record("arbiter_iterations", t, diag.arbiter_iterations)
        rec.record("changes", t, solution.changes)

        # Control-plane telemetry (policies without the incremental
        # control plane -- the baselines -- simply record nothing here).
        # Naming contract: repro.sim.recorder module docstring.
        telemetry = getattr(diag, "telemetry", None)
        if telemetry is not None:
            for stage, ms in telemetry.stage_ms.items():
                rec.record(f"stage_ms:{stage}", t, ms)
            warm = telemetry.mode == "warm"
            rec.record("cycle_warm", t, 1.0 if warm else 0.0)
            rec.record("eq_evals", t, telemetry.eq_evals)
            rec.record("eq_cache_hits", t, telemetry.eq_cache_hits)
            rec.bump("warm_cycles" if warm else "cold_cycles")
            rec.bump("eq_evals_total", telemetry.eq_evals)
            rec.bump("eq_cache_hits_total", telemetry.eq_cache_hits)
            rec.bump("eq_seed_hits_total", telemetry.seed_hits)
            rec.bump("eq_seed_misses_total", telemetry.seed_misses)
            if not warm and telemetry.reason:
                rec.bump(f"invalidations:{telemetry.reason}")

        # Background exact-oracle telemetry (the ``exact_oracle``
        # controller knob; naming contract: repro.sim.recorder module
        # docstring).  Both fields are NaN on cycles the oracle skipped
        # or is disabled for, so the series only carry real samples.
        gap = getattr(diag, "optimality_gap", math.nan)
        if not math.isnan(gap):
            rec.record("optimality_gap", t, gap)
        exact_ms = getattr(diag, "exact_ms", math.nan)
        if not math.isnan(exact_ms):
            rec.record("exact_ms", t, exact_ms)

        # Sharded control plane: per-shard decide times and cross-shard
        # balance (ShardedDiagnostics only; the monolithic controller
        # records nothing here).
        shard_telemetry = getattr(diag, "shard_telemetry", ())
        if shard_telemetry:
            rec.record("shard_imbalance", t, diag.shard_imbalance)
            for st in shard_telemetry:
                rec.record(
                    f"shard_ms:{st.shard}",
                    t,
                    st.telemetry.stage_ms.get("total", math.nan),
                )
                if st.telemetry.mode != "warm" and st.telemetry.reason:
                    rec.bump(f"invalidations:shard{st.shard}:{st.telemetry.reason}")

        # Graceful degradation and fault telemetry (naming contract:
        # repro.sim.recorder module docstring).  ``brownout_fraction`` is
        # recorded every cycle (0.0 while no brownout is active) so its
        # time average is well-defined for every run.
        rec.record(
            "brownout_fraction", t, self._cluster.brownout_capacity_fraction
        )
        if getattr(diag, "degraded", False):
            rec.bump("degraded_cycles")
            rec.bump(f"fallback:{getattr(diag, 'fallback_reason', '') or 'unknown'}")
        if getattr(diag, "deadline_overrun", False):
            rec.bump("decide_overruns")
        pool_failures = getattr(diag, "pool_failures", 0)
        if pool_failures:
            rec.bump("fallback:shard-pool", pool_failures)

        counts = {phase: 0 for phase in JobPhase}
        for job in self._jobs.values():
            if job.spec.submit_time <= t:
                counts[job.phase] += 1
        rec.record("jobs_running", t, counts[JobPhase.RUNNING])
        rec.record("jobs_suspended", t, counts[JobPhase.SUSPENDED])
        rec.record("jobs_pending", t, counts[JobPhase.PENDING])
        rec.record("jobs_completed_series", t, counts[JobPhase.COMPLETED])

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _job_of(self, vm_id: str) -> Job:
        return self._jobs[self._vm_to_job[vm_id]]

    @staticmethod
    def _parse_instance(vm_id: str) -> tuple[str, str]:
        if not vm_id.startswith("tx:") or "@" not in vm_id:
            raise SimulationError(f"not an instance vm id: {vm_id!r}")
        app_id, node_id = vm_id[3:].split("@", 1)
        return app_id, node_id


def run_scenario(
    scenario: Scenario, policy_factory: Optional[PolicyFactory] = None
) -> ExperimentResult:
    """Convenience one-call experiment execution."""
    return ExperimentRunner(scenario, policy_factory).run()

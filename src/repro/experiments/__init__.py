"""Experiment harness: scenarios, the end-to-end runner, figure
regeneration, reporting and parameter sweeps."""

from .figures import (
    figure1_series,
    figure2_series,
    render_figure1,
    render_figure2,
    run_paper_experiment,
    write_csv,
)
from .replication import (
    REPLICATED_RESULT_SCHEMA,
    ReplicatedResult,
    load_result,
    replicate_spec,
    resolve_seeds,
)
from .report import (
    comparison_table,
    format_table,
    replication_summary,
    replication_table,
    summarize_run,
)
from .runner import (
    ExperimentResult,
    ExperimentRunner,
    PlacementPolicy,
    PolicyFactory,
    default_policy_factory,
    run_scenario,
)
from .scenario import (
    AppWorkload,
    NodeFailure,
    Scenario,
    paper_scenario,
    paper_tx_app,
    scaled_paper_scenario,
    smoke_scenario,
)
from .sweeps import (
    SweepPoint,
    SweepPointError,
    SweepResult,
    default_metrics,
    run_sweep,
    sweep_table,
)

__all__ = [
    "Scenario",
    "AppWorkload",
    "NodeFailure",
    "paper_scenario",
    "scaled_paper_scenario",
    "smoke_scenario",
    "paper_tx_app",
    "ExperimentRunner",
    "ExperimentResult",
    "PlacementPolicy",
    "PolicyFactory",
    "default_policy_factory",
    "run_scenario",
    "figure1_series",
    "figure2_series",
    "render_figure1",
    "render_figure2",
    "run_paper_experiment",
    "write_csv",
    "summarize_run",
    "comparison_table",
    "format_table",
    "replication_summary",
    "replication_table",
    "run_sweep",
    "sweep_table",
    "SweepResult",
    "SweepPoint",
    "SweepPointError",
    "default_metrics",
    "ReplicatedResult",
    "REPLICATED_RESULT_SCHEMA",
    "replicate_spec",
    "resolve_seeds",
    "load_result",
]

"""Regeneration of the paper's evaluation figures.

* **Figure 1** -- actual utility of the transactional workload and average
  hypothetical utility of the long-running workload over time.
* **Figure 2** -- CPU power allocated to each workload, together with the
  CPU demand each would need to achieve its maximum utility.

Both figures come from a single run of the paper scenario; this module
extracts the series, renders them as terminal plots and CSV, and runs the
shape validation.  Usable as a library (the benches import it) and as a
CLI::

    python -m repro.experiments.figures --figure both --scale 1.0
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Mapping, Optional

import numpy as np

from ..analysis.ascii_plot import ascii_plot
from ..analysis.validate import ValidationReport, validate_paper_run
from .runner import ExperimentResult, PolicyFactory, run_scenario
from .scenario import Scenario, paper_scenario, scaled_paper_scenario


def figure1_series(result: ExperimentResult) -> Mapping[str, np.ndarray]:
    """Figure 1's series: utility of both workloads over time."""
    rec = result.recorder
    t = rec.series("tx_utility").times
    return {
        "time": t,
        "transactional": rec.series("tx_utility").values,
        "long_running": rec.series("lr_utility").resample(t),
    }


def figure2_series(result: ExperimentResult) -> Mapping[str, np.ndarray]:
    """Figure 2's series: demands and satisfied (allocated) CPU power."""
    rec = result.recorder
    t = rec.series("tx_allocation").times
    return {
        "time": t,
        "transactional_demand": rec.series("tx_demand").resample(t),
        "long_running_demand": rec.series("lr_demand").resample(t),
        "satisfied_transactional": rec.series("tx_allocation").values,
        "satisfied_long_running": rec.series("lr_allocation").resample(t),
    }


def render_figure1(result: ExperimentResult) -> str:
    """Terminal rendering of Figure 1."""
    data = figure1_series(result)
    return ascii_plot(
        {
            "transactional": (data["time"], data["transactional"]),
            "long-running": (data["time"], data["long_running"]),
        },
        title="Figure 1: workload utility over time",
        y_label="utility",
    )


def render_figure2(result: ExperimentResult) -> str:
    """Terminal rendering of Figure 2."""
    data = figure2_series(result)
    return ascii_plot(
        {
            "tx demand": (data["time"], data["transactional_demand"]),
            "lr demand": (data["time"], data["long_running_demand"]),
            "tx satisfied": (data["time"], data["satisfied_transactional"]),
            "lr satisfied": (data["time"], data["satisfied_long_running"]),
        },
        title="Figure 2: CPU power allocated vs demand (MHz)",
        y_label="MHz",
    )


def write_csv(series: Mapping[str, np.ndarray], path: Path) -> None:
    """Dump named columns (sharing the ``time`` axis) to a CSV file."""
    names = list(series)
    columns = [np.asarray(series[name], dtype=float) for name in names]
    rows = np.column_stack(columns)
    header = ",".join(names)
    np.savetxt(path, rows, delimiter=",", header=header, comments="")


def run_paper_experiment(
    scale: float = 1.0,
    seed: int = 42,
    scenario: Optional[Scenario] = None,
    policy_factory: Optional[PolicyFactory] = None,
) -> tuple[ExperimentResult, ValidationReport]:
    """Run the paper scenario (optionally scaled) and validate its shape."""
    if scenario is None:
        scenario = (
            paper_scenario(seed=seed)
            if scale >= 1.0
            else scaled_paper_scenario(scale=scale, seed=seed)
        )
    result = run_scenario(scenario, policy_factory)
    report = validate_paper_run(result)
    return result, report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point (also installed as ``repro-experiment``)."""
    parser = argparse.ArgumentParser(
        description="Reproduce the HPDC'08 evaluation figures."
    )
    parser.add_argument("--figure", choices=["1", "2", "both"], default="both")
    parser.add_argument("--scale", type=float, default=1.0, help="cluster scale factor")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--csv-dir", type=Path, default=None, help="write figure CSVs to this directory"
    )
    parser.add_argument(
        "--no-validate", action="store_true", help="skip shape validation"
    )
    args = parser.parse_args(argv)

    result, report = run_paper_experiment(scale=args.scale, seed=args.seed)

    if args.figure in ("1", "both"):
        print(render_figure1(result))
        print()
    if args.figure in ("2", "both"):
        print(render_figure2(result))
        print()

    outcomes = result.job_outcomes()
    print(
        f"cycles={result.cycles}  jobs completed={outcomes['completed']:.0f}"
        f"/{outcomes['submitted']:.0f}  mean achieved utility="
        f"{outcomes['mean_utility']:.3f}"
    )
    log = result.action_log
    print(
        f"actions: starts={log.starts} stops={log.stops} suspends={log.suspensions} "
        f"resumes={log.resumptions} migrations={log.migrations}"
    )

    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        write_csv(figure1_series(result), args.csv_dir / "figure1.csv")
        write_csv(figure2_series(result), args.csv_dir / "figure2.csv")
        print(f"CSV written to {args.csv_dir}")

    if not args.no_validate:
        print("\nShape validation:")
        print(report.summary())
        return 0 if report.passed else 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI glue
    sys.exit(main())

"""Automated paper-shape validation.

The reproduction does not target the paper's absolute numbers (its
substrate was a physical testbed); what must hold is the *shape* of the
evaluation figures.  This module turns the acceptance criteria from
DESIGN.md into executable checks over an
:class:`~repro.experiments.runner.ExperimentResult`:

(a) an initial uncontended phase with the transactional utility at its
    plateau;
(b) monotone (trend) decline of the long-running hypothetical utility
    while jobs accumulate;
(c) equalization: once both workloads contend, the utility gap stays
    small;
(d) recovery after the submission-rate drop;
(e) *uneven allocation, even utility* -- the paper's headline;
(f) feasibility: satisfied demand never exceeds demand or capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeValidationError
from ..experiments.runner import ExperimentResult


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "PASS" if self.passed else "FAIL"
        return f"[{flag}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class ValidationReport:
    """All shape checks for one experiment run."""

    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        """Whether every check passed."""
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        return "\n".join(str(c) for c in self.checks)

    def raise_on_failure(self) -> None:
        """Raise :class:`ShapeValidationError` listing any failed checks."""
        failed = [c for c in self.checks if not c.passed]
        if failed:
            raise ShapeValidationError(
                "shape validation failed:\n" + "\n".join(str(c) for c in failed)
            )


def validate_paper_run(
    result: ExperimentResult,
    *,
    plateau_min: float = 0.6,
    decline_min: float = 0.12,
    equalization_tol: float = 0.18,
    recovery_min: float = 0.01,
    uneven_min_fraction: float = 0.05,
) -> ValidationReport:
    """Check a paper-scenario run against the Figure 1/2 shape criteria.

    Thresholds are deliberately loose -- they flag qualitative breakage,
    not quantitative drift.  Windows are expressed as fractions of the
    horizon so scaled scenarios validate with the same code.
    """
    rec = result.recorder
    horizon = result.scenario.horizon
    rate_drop = 0.857 * horizon  # 60 000 / 70 000 of the paper timeline

    t = rec.series("tx_utility").times
    tx_u = rec.series("tx_utility").values
    lr_u = rec.series("lr_utility").resample(t)
    tx_alloc = rec.series("tx_allocation").resample(t)
    lr_alloc = rec.series("lr_allocation").resample(t)
    tx_demand = rec.series("tx_demand").resample(t)
    lr_demand = rec.series("lr_demand").resample(t)
    capacity = result.scenario.cluster_capacity

    checks: list[CheckResult] = []

    # (a) initial transactional plateau.
    early = tx_u[(t >= 0) & (t <= 0.06 * horizon)]
    plateau = float(np.mean(early)) if early.size else float("nan")
    checks.append(
        CheckResult(
            "a-initial-plateau",
            bool(early.size and plateau >= plateau_min),
            f"mean tx utility over first 6% of run = {plateau:.3f} "
            f"(threshold {plateau_min})",
        )
    )

    # (b) long-running utility declines during the ramp.
    ramp_start = lr_u[(t >= 0.03 * horizon) & (t <= 0.15 * horizon)]
    ramp_end = lr_u[(t >= 0.7 * horizon) & (t <= rate_drop)]
    if ramp_start.size and ramp_end.size:
        drop = float(np.mean(ramp_start) - np.mean(ramp_end))
    else:
        drop = float("nan")
    checks.append(
        CheckResult(
            "b-lr-decline",
            bool(ramp_start.size and ramp_end.size and drop >= decline_min),
            f"lr utility fell by {drop:.3f} between early and late ramp "
            f"(threshold {decline_min})",
        )
    )

    # (c) equalization while contended.
    mid = (t >= 0.45 * horizon) & (t <= rate_drop)
    gap = float(np.mean(np.abs(tx_u[mid] - lr_u[mid]))) if mid.any() else float("nan")
    checks.append(
        CheckResult(
            "c-equalization",
            bool(mid.any() and gap <= equalization_tol),
            f"mean |U_tx − U_lr| over contended window = {gap:.3f} "
            f"(tolerance {equalization_tol})",
        )
    )

    # (d) recovery after the submission-rate drop: "more CPU power being
    # returned to the transactional workload" -- the tx allocation rises
    # (by at least ``recovery_min`` of capacity), the tx utility does not
    # fall, and the long-running demand (backlog) drains.
    before_win = (t >= 0.7 * horizon) & (t <= rate_drop)
    after_win = t >= min(rate_drop + 0.03 * horizon, horizon)
    if before_win.any() and after_win.any():
        alloc_gain = float(
            np.mean(tx_alloc[after_win]) - np.mean(tx_alloc[before_win])
        ) / capacity
        util_gain = float(np.mean(tx_u[after_win]) - np.mean(tx_u[before_win]))
        demand_drop = float(
            np.mean(lr_demand[before_win]) - np.mean(lr_demand[after_win])
        )
        # Primary signal: CPU visibly returns to the transactional side.
        # Alternative (small scaled runs, where per-cycle granularity makes
        # the allocation shift noisy): the backlog demonstrably drains --
        # at least 5% of capacity of long-running demand disappears --
        # without the transactional utility degrading.
        ok = (
            alloc_gain >= recovery_min and util_gain > -0.02 and demand_drop > 0
        ) or (demand_drop >= 0.05 * capacity and util_gain > -0.02)
        detail = (
            f"tx allocation +{alloc_gain:.2%} of capacity, tx utility "
            f"{util_gain:+.3f}, lr demand drained by {demand_drop:.0f} MHz"
        )
    else:
        ok, detail = False, "no samples around the rate drop"
    checks.append(CheckResult("d-recovery", bool(ok), detail))

    # (e) uneven allocation, even utility (the paper's punchline): the two
    # workloads' *demand-satisfaction ratios* differ markedly even though
    # their utilities agree -- CPU is divided by marginal utility, not
    # proportionally to demand.
    if mid.any():
        with np.errstate(divide="ignore", invalid="ignore"):
            tx_ratio = np.where(tx_demand[mid] > 0, tx_alloc[mid] / tx_demand[mid], 1.0)
            lr_ratio = np.where(lr_demand[mid] > 0, lr_alloc[mid] / lr_demand[mid], 1.0)
        ratio_gap = float(np.mean(np.abs(tx_ratio - lr_ratio)))
        util_gap = gap
        uneven_even = ratio_gap >= uneven_min_fraction and util_gap <= equalization_tol
        detail = (
            f"demand-satisfaction gap {ratio_gap:.2f} "
            f"(tx {float(np.mean(tx_ratio)):.2f} vs lr {float(np.mean(lr_ratio)):.2f}) "
            f"with utility gap {util_gap:.3f}"
        )
    else:
        uneven_even, detail = False, "no contended window samples"
    checks.append(CheckResult("e-uneven-alloc-even-utility", bool(uneven_even), detail))

    # (f) feasibility: satisfied <= demand and total <= capacity.  Demand
    # comparison uses the controller's *estimated* demand (what it actually
    # promised against); the plotted true demand is measured with noise and
    # can momentarily dip below what was (correctly) granted.
    tx_demand_est = rec.series("tx_demand_est").resample(t)
    lr_demand_est = rec.series("lr_demand_est").resample(t)
    slack = 1e-6 + 1e-3 * capacity
    tx_ok = bool(np.all(tx_alloc <= np.maximum(tx_demand, tx_demand_est) + slack))
    lr_ok = bool(np.all(lr_alloc <= np.maximum(lr_demand, lr_demand_est) + slack))
    cap_ok = bool(np.all(tx_alloc + lr_alloc <= capacity + slack))
    checks.append(
        CheckResult(
            "f-feasibility",
            tx_ok and lr_ok and cap_ok,
            f"satisfied<=demand: tx={tx_ok} lr={lr_ok}; total<=capacity: {cap_ok}",
        )
    )

    return ValidationReport(tuple(checks))

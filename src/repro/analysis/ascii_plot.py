"""Terminal line plots.

The benches and the figure CLI print the reproduced curves directly in the
terminal (no plotting dependencies are available offline).  Each series
gets a distinct marker; axes are scaled to the joint data range.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "time (s)",
    y_label: str = "",
) -> str:
    """Render named ``(x, y)`` series on one character grid.

    Parameters
    ----------
    series:
        Mapping of series name to ``(x_values, y_values)``; all series
        share the axes.  At most eight series (distinct markers).
    width / height:
        Plot-area size in characters (excluding axes and labels).
    title / x_label / y_label:
        Annotations.

    Returns
    -------
    str
        A multi-line string ready to print.
    """
    if not series:
        raise ConfigurationError("nothing to plot")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")
    if width < 16 or height < 4:
        raise ConfigurationError("plot area too small")

    xs_all: list[np.ndarray] = []
    ys_all: list[np.ndarray] = []
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.shape != y.shape or x.size == 0:
            raise ConfigurationError(f"series {name!r}: bad or empty data")
        finite = np.isfinite(x) & np.isfinite(y)
        xs_all.append(x[finite])
        ys_all.append(y[finite])

    x_min = min(float(x.min()) for x in xs_all if x.size)
    x_max = max(float(x.max()) for x in xs_all if x.size)
    y_min = min(float(y.min()) for y in ys_all if y.size)
    y_max = max(float(y.max()) for y in ys_all if y.size)
    if not all(map(math.isfinite, (x_min, x_max, y_min, y_max))):
        raise ConfigurationError("series contain no finite points")
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, _), x, y in zip(series.items(), xs_all, ys_all):
        marker = _MARKERS[list(series).index(name)]
        cols = np.clip(
            ((x - x_min) / (x_max - x_min) * (width - 1)).round().astype(int), 0, width - 1
        )
        rows = np.clip(
            ((y - y_min) / (y_max - y_min) * (height - 1)).round().astype(int),
            0,
            height - 1,
        )
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines: list[str] = []
    if title:
        lines.append(title.center(width + 12))
    for i, row in enumerate(grid):
        y_val = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{y_val:>10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11} {x_min:<12.6g}{x_label:^{max(width - 26, 1)}}{x_max:>12.6g}")
    legend = "   ".join(
        f"{_MARKERS[i]} {name}" for i, name in enumerate(series)
    )
    lines.append((" " * 12) + legend)
    if y_label:
        lines.append((" " * 12) + f"[y: {y_label}]")
    return "\n".join(lines)

"""Analysis toolkit: time-series ops, summary statistics, terminal plots
and automated paper-shape validation."""

from .ascii_plot import ascii_plot
from .stats import (
    JobOutcomeStats,
    MetricAggregate,
    Summary,
    aggregate_metrics,
    equalization_error,
    job_outcome_stats,
    job_outcomes_by_class,
)
from .timeseries import (
    first_crossing,
    integrate,
    moving_average,
    regular_grid,
    resample,
    window_mean,
)
from .validate import CheckResult, ValidationReport, validate_paper_run

__all__ = [
    "ascii_plot",
    "Summary",
    "MetricAggregate",
    "aggregate_metrics",
    "JobOutcomeStats",
    "equalization_error",
    "job_outcome_stats",
    "job_outcomes_by_class",
    "regular_grid",
    "resample",
    "moving_average",
    "first_crossing",
    "window_mean",
    "integrate",
    "CheckResult",
    "ValidationReport",
    "validate_paper_run",
]

"""Time-series operations on recorded experiment series."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..sim.recorder import Series


def regular_grid(start: float, end: float, step: float) -> np.ndarray:
    """Inclusive-start, exclusive-end regular sample grid."""
    if step <= 0:
        raise ConfigurationError("step must be positive")
    if end <= start:
        raise ConfigurationError("end must exceed start")
    return np.arange(start, end, step, dtype=float)


def resample(series: Series, grid: np.ndarray) -> np.ndarray:
    """Step-function evaluation of ``series`` on ``grid`` (delegates)."""
    return series.resample(grid)


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinkage (output same length)."""
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    if window == 1 or values.size == 0:
        return values.copy()
    kernel = np.ones(window)
    summed = np.convolve(values, kernel, mode="same")
    counts = np.convolve(np.ones_like(values), kernel, mode="same")
    return summed / counts


def first_crossing(
    times: np.ndarray, a: np.ndarray, b: np.ndarray, after: float = -np.inf
) -> Optional[float]:
    """First time ``a`` falls to or below ``b`` having been above it.

    Returns ``None`` when no such crossing exists after ``after``.
    """
    times = np.asarray(times, dtype=float)
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    if times.shape != diff.shape:
        raise ConfigurationError("times and series must have equal length")
    above = diff > 0
    for i in range(1, len(times)):
        if times[i] <= after:
            continue
        if above[i - 1] and not above[i]:
            return float(times[i])
    return None


def window_mean(series: Series, start: float, end: float) -> float:
    """Exact time-weighted mean of a step series over ``[start, end]``."""
    return series.time_average(start, end)


def integrate(series: Series, start: float, end: float) -> float:
    """Time integral of a step series over ``[start, end]``."""
    return series.time_average(start, end) * (end - start)

"""Summary statistics for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utility.longrunning import JobUtility
from ..workloads.jobs import Job, JobPhase


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Build a summary; raises on empty input."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarize an empty sample")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"p50={self.p50:.4g} p95={self.p95:.4g}"
        )


def equalization_error(tx_utility: np.ndarray, lr_utility: np.ndarray) -> float:
    """Mean absolute utility gap -- how well the arbiter equalized."""
    tx = np.asarray(tx_utility, dtype=float)
    lr = np.asarray(lr_utility, dtype=float)
    if tx.shape != lr.shape:
        raise ConfigurationError("utility arrays must have equal shape")
    if tx.size == 0:
        raise ConfigurationError("empty utility arrays")
    return float(np.mean(np.abs(tx - lr)))


@dataclass(frozen=True)
class JobOutcomeStats:
    """SLA outcomes of a (sub)population of jobs."""

    submitted: int
    completed: int
    on_time: int
    mean_utility: float
    mean_flow_time: float
    mean_tardiness: float
    p95_tardiness: float

    @property
    def completion_fraction(self) -> float:
        """Completed / submitted (0 when nothing was submitted)."""
        return self.completed / self.submitted if self.submitted else 0.0

    @property
    def on_time_fraction(self) -> float:
        """On-time completions / completions (nan when none completed)."""
        return self.on_time / self.completed if self.completed else math.nan


def job_outcome_stats(jobs: Iterable[Job], horizon: float | None = None) -> JobOutcomeStats:
    """Aggregate SLA outcomes over completed jobs.

    ``horizon`` restricts "submitted" to jobs that entered the system
    before it (useful because traces may extend past the simulation end).
    """
    utility = JobUtility()
    submitted = 0
    completed: list[Job] = []
    for job in jobs:
        if horizon is not None and job.spec.submit_time >= horizon:
            continue
        submitted += 1
        if job.phase is JobPhase.COMPLETED:
            completed.append(job)
    if not completed:
        return JobOutcomeStats(submitted, 0, 0, math.nan, math.nan, math.nan, math.nan)
    utilities = [utility.achieved(j) for j in completed]
    flows = [j.flow_time for j in completed]
    tard = [j.tardiness for j in completed]
    return JobOutcomeStats(
        submitted=submitted,
        completed=len(completed),
        on_time=sum(1 for x in tard if x == 0.0),
        mean_utility=float(np.mean(utilities)),
        mean_flow_time=float(np.mean(flows)),
        mean_tardiness=float(np.mean(tard)),
        p95_tardiness=float(np.percentile(tard, 95)),
    )


def job_outcomes_by_class(
    jobs: Iterable[Job], horizon: float | None = None
) -> Mapping[str, JobOutcomeStats]:
    """Per-service-class outcome stats (differentiation experiments)."""
    by_class: dict[str, list[Job]] = {}
    for job in jobs:
        by_class.setdefault(job.spec.job_class, []).append(job)
    return {
        cls: job_outcome_stats(members, horizon)
        for cls, members in sorted(by_class.items())
    }

"""Summary statistics for experiment reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..utility.longrunning import JobUtility
from ..workloads.jobs import Job, JobPhase


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    p50: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Build a summary; raises on empty input."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarize an empty sample")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"p50={self.p50:.4g} p95={self.p95:.4g}"
        )


@dataclass(frozen=True)
class MetricAggregate:
    """One metric aggregated across replications (seeds).

    ``n`` counts the *finite* samples the statistics are computed from;
    non-finite samples (a metric that is NaN for some seed, e.g.
    ``on_time_fraction`` when nothing completed) are dropped before
    aggregation.  With no finite samples every statistic is NaN and
    ``n`` is 0.  ``std`` is the sample standard deviation (ddof=1),
    defined as 0.0 for ``n == 1`` so a single replication degenerates to
    a point estimate: ``ci95_lo == mean == ci95_hi``.

    The 95% confidence interval uses the Student-t critical value with
    ``n - 1`` degrees of freedom, the standard small-sample interval for
    replicated simulation experiments.

    Aggregation is *permutation-invariant*: samples are sorted before
    any floating-point reduction, so the same multiset of per-seed
    values always produces bit-identical statistics regardless of seed
    order.
    """

    n: int
    mean: float
    std: float
    ci95_lo: float
    ci95_hi: float
    minimum: float
    maximum: float

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95% confidence interval."""
        return (self.ci95_hi - self.ci95_lo) / 2.0

    @classmethod
    def of(cls, values: Iterable[float]) -> "MetricAggregate":
        """Aggregate a sample of per-replication metric values."""
        arr = np.asarray(list(values), dtype=float)
        arr = np.sort(arr[np.isfinite(arr)])  # sort: permutation-invariant
        n = int(arr.size)
        if n == 0:
            nan = math.nan
            return cls(0, nan, nan, nan, nan, nan, nan)
        # Clamp away float-summation drift: the sample mean lies in
        # [min, max] mathematically, but pairwise summation can land one
        # ulp outside for constant samples.
        mean = min(max(float(arr.mean()), float(arr[0])), float(arr[-1]))
        if n == 1:
            return cls(1, mean, 0.0, mean, mean, mean, mean)
        std = float(arr.std(ddof=1))
        half = _t_critical_95(n - 1) * std / math.sqrt(n)
        return cls(
            n=n,
            mean=mean,
            std=std,
            ci95_lo=mean - half,
            ci95_hi=mean + half,
            minimum=float(arr[0]),
            maximum=float(arr[-1]),
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (the ``repro.result-replicated/v1`` layout)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "ci95_lo": self.ci95_lo,
            "ci95_hi": self.ci95_hi,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MetricAggregate":
        def _num(key: str) -> float:
            value = data.get(key)
            return float(value) if isinstance(value, (int, float)) else math.nan

        return cls(
            n=int(data.get("n", 0)),  # type: ignore[call-overload]
            mean=_num("mean"),
            std=_num("std"),
            ci95_lo=_num("ci95_lo"),
            ci95_hi=_num("ci95_hi"),
            minimum=_num("min"),
            maximum=_num("max"),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci95_halfwidth:.2g} (n={self.n})"


def _t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom."""
    from scipy.stats import t as _student_t

    return float(_student_t.ppf(0.975, dof))


def aggregate_metrics(
    summaries: Sequence[Mapping[str, float]],
) -> dict[str, MetricAggregate]:
    """Per-metric :class:`MetricAggregate` over per-replication summaries.

    Metrics are keyed by name; the result covers the union of keys (a
    metric missing from some replication contributes no sample there).
    Raises when ``summaries`` is empty -- aggregating zero replications
    is a caller bug, not an empty table.
    """
    if not summaries:
        raise ConfigurationError("cannot aggregate zero replications")
    keys = sorted({key for summary in summaries for key in summary})
    return {
        key: MetricAggregate.of(
            summary[key] for summary in summaries if key in summary
        )
        for key in keys
    }


def equalization_error(tx_utility: np.ndarray, lr_utility: np.ndarray) -> float:
    """Mean absolute utility gap -- how well the arbiter equalized."""
    tx = np.asarray(tx_utility, dtype=float)
    lr = np.asarray(lr_utility, dtype=float)
    if tx.shape != lr.shape:
        raise ConfigurationError("utility arrays must have equal shape")
    if tx.size == 0:
        raise ConfigurationError("empty utility arrays")
    return float(np.mean(np.abs(tx - lr)))


@dataclass(frozen=True)
class JobOutcomeStats:
    """SLA outcomes of a (sub)population of jobs."""

    submitted: int
    completed: int
    on_time: int
    mean_utility: float
    mean_flow_time: float
    mean_tardiness: float
    p95_tardiness: float

    @property
    def completion_fraction(self) -> float:
        """Completed / submitted (0 when nothing was submitted)."""
        return self.completed / self.submitted if self.submitted else 0.0

    @property
    def on_time_fraction(self) -> float:
        """On-time completions / completions (nan when none completed)."""
        return self.on_time / self.completed if self.completed else math.nan


def job_outcome_stats(jobs: Iterable[Job], horizon: float | None = None) -> JobOutcomeStats:
    """Aggregate SLA outcomes over completed jobs.

    ``horizon`` restricts "submitted" to jobs that entered the system
    before it (useful because traces may extend past the simulation end).
    """
    utility = JobUtility()
    submitted = 0
    completed: list[Job] = []
    for job in jobs:
        if horizon is not None and job.spec.submit_time >= horizon:
            continue
        submitted += 1
        if job.phase is JobPhase.COMPLETED:
            completed.append(job)
    if not completed:
        return JobOutcomeStats(submitted, 0, 0, math.nan, math.nan, math.nan, math.nan)
    utilities = [utility.achieved(j) for j in completed]
    flows = [j.flow_time for j in completed]
    tard = [j.tardiness for j in completed]
    return JobOutcomeStats(
        submitted=submitted,
        completed=len(completed),
        on_time=sum(1 for x in tard if x == 0.0),
        mean_utility=float(np.mean(utilities)),
        mean_flow_time=float(np.mean(flows)),
        mean_tardiness=float(np.mean(tard)),
        p95_tardiness=float(np.percentile(tard, 95)),
    )


def job_outcomes_by_class(
    jobs: Iterable[Job], horizon: float | None = None
) -> Mapping[str, JobOutcomeStats]:
    """Per-service-class outcome stats (differentiation experiments)."""
    by_class: dict[str, list[Job]] = {}
    for job in jobs:
        by_class.setdefault(job.spec.job_class, []).append(job)
    return {
        cls: job_outcome_stats(members, horizon)
        for cls, members in sorted(by_class.items())
    }

"""``python -m repro`` -- the reproduction command line.

Every registered scenario runs from the CLI alone, under any registered
placement policy, with spec-level overrides::

    repro list                                  # registries + spec schema
                                                # (zone count, [network] flag)
    repro run smoke                             # registered scenario
    repro run paper --policy fcfs               # pick a baseline by name
    repro run smoke --horizon 600 --set controller.control_cycle=300
    repro run smoke --shards 4                  # sharded control plane
    repro run chaos-soak --policy chaos-utility # fault-injection soak
    repro run smoke --no-resilient              # faults abort the run
    repro run --spec examples/specs/smoke.json  # from a spec file
    repro show heterogeneous-cluster --format toml > hetero.toml
    repro sweep smoke --param controller.control_cycle \\
        --values 300,600,1200 --workers 3
    repro run paper --replications 5 --workers 5 --json out.json
    repro report out.json other.json           # tables, no re-running

``--set key=value`` addresses the spec's :meth:`ScenarioSpec.to_dict`
form by dotted path (``controller.solver.backend=milp``,
``apps.0.rt_goal=0.3``); values parse as JSON with a plain-string
fallback.  ``repro run`` prints the run summary and optionally exports
the full result (``--json out.json``, ``--csv outdir/``).

``repro run --replications N`` (or ``--seeds 1,2,3``) runs the scenario
once per seed -- over a process pool with ``--workers`` -- and exports a
``repro.result-replicated/v1`` payload (per-metric mean, std, 95% CI,
min/max across seeds).  ``repro report FILE...`` renders a
policy-comparison table (policy x metric, mean ± CI) from saved result
files of either schema without re-running anything.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

from .api import (
    Experiment,
    ScenarioSpec,
    available_backends,
    available_policies,
    available_scenarios,
    get_policy,
    load_result,
    run_sweep,
    scenario_spec,
    sweep_table,
)
from .errors import ReproError
from .experiments.report import (
    replication_summary,
    replication_table,
    summarize_run,
)
from .experiments.scenario import Scenario


def _parse_value(text: str) -> object:
    """JSON literal when possible (numbers, bools, lists), else string."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_overrides(pairs: Sequence[str]) -> dict[str, object]:
    overrides: dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _base_overrides(args: argparse.Namespace) -> dict[str, object]:
    overrides = _parse_overrides(args.set or [])
    if getattr(args, "horizon", None) is not None:
        overrides.setdefault("horizon", args.horizon)
    if getattr(args, "seed", None) is not None:
        overrides.setdefault("seed", args.seed)
    if getattr(args, "shards", None) is not None:
        overrides.setdefault("controller.shards", args.shards)
    if getattr(args, "no_resilient", False):
        overrides.setdefault("controller.resilient", False)
    if getattr(args, "exact_oracle", None) is not None:
        overrides.setdefault("controller.exact_oracle", args.exact_oracle)
    return overrides


def _load_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec is not None:
        if args.scenario is not None:
            raise SystemExit("give either a scenario name or --spec, not both")
        spec = ScenarioSpec.load(args.spec)
    elif args.scenario is not None:
        spec = scenario_spec(args.scenario)
    else:
        raise SystemExit("a scenario name or --spec FILE is required")
    overrides = _base_overrides(args)
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    if args.names:
        for name in available_scenarios():
            print(name)
        return 0
    print("scenarios (repro run <name>):")
    for name in available_scenarios():
        spec = scenario_spec(name)
        zones = len(spec.network.zones) if spec.network is not None else (
            len({cls.zone or cls.name for cls in spec.topology.classes})
            if spec.topology.classes
            else 1
        )
        network = "[network]" if spec.network is not None else ""
        annotation = f"  ({zones} zone{'s' if zones != 1 else ''}{' ' if network else ''}{network})"
        print(f"  {name}{annotation}")
    print("\npolicies (--policy <name>):")
    for name in available_policies():
        print(f"  {name}")
    print("\nsolver backends (--set controller.solver.backend=<name>):")
    for name in available_backends():
        print(f"  {name}")
    print("\nspec files: repro run --spec FILE.json|FILE.toml "
          "(schema repro.scenario/v1)")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    if args.format == "toml":
        sys.stdout.write(spec.to_toml())
    else:
        print(spec.to_json())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    experiment = Experiment.from_spec(spec, policy=args.policy)
    if args.replications is None and args.seeds is None:
        if args.workers is not None:
            raise SystemExit(
                "--workers only applies to replicated runs; add "
                "--replications N or --seeds LIST (or use `repro sweep`)"
            )
    else:
        seeds = None
        if args.seeds is not None:
            try:
                seeds = [int(s) for s in args.seeds.split(",") if s != ""]
            except ValueError:
                raise SystemExit(
                    f"--seeds expects a comma-separated integer list, "
                    f"got {args.seeds!r}"
                ) from None
        replicated = experiment.replicate(
            seeds=seeds, replications=args.replications, workers=args.workers
        )
        print(replication_summary(replicated))
        if args.json is not None:
            replicated.save(args.json)
            print(f"\nreplicated result written to {args.json}")
        if args.csv is not None:
            paths = replicated.export_csv(args.csv)
            print(f"\nCSV written to {', '.join(str(p) for p in paths)}")
        return 0
    result = experiment.run()
    print(summarize_run(result))
    if args.json is not None:
        Path(args.json).write_text(result.to_json() + "\n")
        print(f"\nresult written to {args.json}")
    if args.csv is not None:
        paths = result.export_csv(args.csv)
        print(f"\nCSV written to {', '.join(str(p) for p in paths)}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = [load_result(path) for path in args.files]
    metrics = None
    if args.metrics:
        metrics = [m for m in args.metrics.split(",") if m != ""]
    scenarios = sorted({r.scenario_name for r in results})
    print(f"report over {len(results)} result file(s); "
          f"scenario(s): {', '.join(scenarios)}")
    print()
    print(replication_table(results, metrics=metrics))
    return 0


def _sweep_point_scenario(
    spec_data: Mapping[str, object], param: str, value: object
) -> Scenario:
    """Module-level (picklable) scenario factory for ``repro sweep``."""
    spec = ScenarioSpec.from_dict(spec_data)
    return spec.with_overrides({param: value}).materialize()


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    values = [_parse_value(v) for v in args.values.split(",") if v != ""]
    if not values:
        raise SystemExit("--values expects a comma-separated list")
    factory = functools.partial(_sweep_point_scenario, spec.to_dict(), args.param)
    sweep = run_sweep(
        name=f"{spec.name}:{args.param}",
        grid=values,
        scenario_factory=factory,
        policy_factory=get_policy(args.policy),
        workers=args.workers,
    )
    print(sweep_table(sweep, parameter_label=args.param))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_spec_arguments(
    parser: argparse.ArgumentParser, *, with_policy: bool = True
) -> None:
    parser.add_argument(
        "scenario", nargs="?", default=None,
        help="registered scenario name (see `repro list`)",
    )
    parser.add_argument(
        "--spec", type=Path, default=None,
        help="scenario spec file (.json or .toml) instead of a name",
    )
    if with_policy:
        parser.add_argument(
            "--policy", default="utility",
            help="placement policy name (see `repro list`; default: utility)",
        )
    parser.add_argument(
        "--horizon", type=float, default=None, help="override the horizon (s)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the scenario seed"
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="partition the cluster into K shards (sharded control "
             "plane; shorthand for --set controller.shards=K)",
    )
    parser.add_argument(
        "--exact-oracle", default=None, metavar="BACKEND",
        help="record optimality-gap telemetry against an exact backend "
             "(milp or cpsat; shorthand for "
             "--set controller.exact_oracle=BACKEND)",
    )
    parser.add_argument(
        "--no-resilient", action="store_true",
        help="disable the graceful-degradation wrapper (shorthand for "
             "--set controller.resilient=false); faults then abort the run",
    )
    parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", default=[],
        help="dotted-path spec override, e.g. controller.control_cycle=300 "
             "(repeatable)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative experiment runner for the HPDC'08 "
                    "SLA-placement reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser(
        "list", help="list registered scenarios, policies and solver backends"
    )
    p_list.add_argument(
        "--names", action="store_true",
        help="print scenario names only (one per line, for scripting)",
    )
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one scenario under one policy")
    _add_spec_arguments(p_run)
    p_run.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="write the full result as JSON (repro.result/v1, or "
             "repro.result-replicated/v1 when replicating)",
    )
    p_run.add_argument(
        "--csv", type=Path, default=None, metavar="DIR",
        help="write series.csv and summary.csv (or aggregates.csv and "
             "per_seed.csv when replicating) to this directory",
    )
    p_run.add_argument(
        "--replications", type=int, default=None, metavar="N",
        help="run N seed variants (consecutive seeds from the scenario "
             "seed) and report mean/95%% CI per metric",
    )
    p_run.add_argument(
        "--seeds", default=None, metavar="LIST",
        help="explicit comma-separated seed list (alternative to "
             "--replications)",
    )
    p_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan replications out over N worker processes",
    )
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser(
        "report",
        help="render a policy-comparison table from saved result files "
             "without re-running",
    )
    p_report.add_argument(
        "files", nargs="+", type=Path, metavar="FILE",
        help="saved result JSON (repro.result/v1 or "
             "repro.result-replicated/v1)",
    )
    p_report.add_argument(
        "--metrics", default=None, metavar="LIST",
        help="comma-separated metric columns (default: the paper-facing "
             "summary metrics)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_show = sub.add_parser(
        "show", help="print a scenario's spec (after overrides) and exit"
    )
    # No --policy: the policy is not part of the spec being shown.
    _add_spec_arguments(p_show, with_policy=False)
    p_show.add_argument(
        "--format", choices=["json", "toml"], default="json",
        help="output format (default: json)",
    )
    p_show.set_defaults(func=_cmd_show)

    p_sweep = sub.add_parser(
        "sweep", help="run a one-parameter grid and tabulate summary metrics"
    )
    _add_spec_arguments(p_sweep)
    p_sweep.add_argument(
        "--param", required=True,
        help="dotted spec path to sweep, e.g. controller.control_cycle",
    )
    p_sweep.add_argument(
        "--values", required=True,
        help="comma-separated grid values (JSON literals)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None,
        help="fan grid points out over N worker processes",
    )
    p_sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
